//! MPI-style derived datatype trees.
//!
//! A [`Datatype`] is an immutable, cheaply clonable (`Arc`) tree. Each node
//! caches derived quantities (size, extent, true extent, leaf-block count,
//! nesting depth, contiguity) so that the commit step ([`crate::dataloop`])
//! and the offload strategy selection are O(1) per node.
//!
//! Displacement conventions follow MPI:
//! * `vector` strides and `indexed*` displacements are in multiples of the
//!   base type **extent**;
//! * `hvector`/`hindexed*`/`struct` displacements are in **bytes**;
//! * internally everything is normalized to bytes.

use std::sync::Arc;

use crate::error::{DdtError, Result};

/// Predefined elementary datatypes (the MPI basic types we support).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Elementary {
    /// 1-byte integer / `MPI_BYTE` / `MPI_CHAR`.
    Int8,
    /// 2-byte integer / `MPI_SHORT`.
    Int16,
    /// 4-byte integer / `MPI_INT`.
    Int32,
    /// 8-byte integer / `MPI_LONG_LONG`.
    Int64,
    /// 4-byte IEEE float / `MPI_FLOAT`.
    Float,
    /// 8-byte IEEE float / `MPI_DOUBLE`.
    Double,
    /// 16-byte complex double (`MPI_C_DOUBLE_COMPLEX`), used by FFT2D.
    ComplexDouble,
}

impl Elementary {
    /// Size of the elementary type in bytes.
    pub const fn size(self) -> u64 {
        match self {
            Elementary::Int8 => 1,
            Elementary::Int16 => 2,
            Elementary::Int32 | Elementary::Float => 4,
            Elementary::Int64 | Elementary::Double => 8,
            Elementary::ComplexDouble => 16,
        }
    }

    /// MPI-style name, for diagnostics.
    pub const fn name(self) -> &'static str {
        match self {
            Elementary::Int8 => "MPI_BYTE",
            Elementary::Int16 => "MPI_SHORT",
            Elementary::Int32 => "MPI_INT",
            Elementary::Int64 => "MPI_LONG_LONG",
            Elementary::Float => "MPI_FLOAT",
            Elementary::Double => "MPI_DOUBLE",
            Elementary::ComplexDouble => "MPI_C_DOUBLE_COMPLEX",
        }
    }
}

/// Array storage order for [`Datatype::subarray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayOrder {
    /// Row-major (last dimension contiguous), `MPI_ORDER_C`.
    C,
    /// Column-major (first dimension contiguous), `MPI_ORDER_FORTRAN`.
    Fortran,
}

/// One field of a struct datatype: `count` consecutive `ty` at byte
/// displacement `displ`.
#[derive(Debug, Clone)]
pub struct StructField {
    /// Number of consecutive elements of `ty`.
    pub count: u32,
    /// Byte displacement of the field relative to the struct origin.
    pub displ: i64,
    /// Field datatype.
    pub ty: Datatype,
}

/// The constructor variant of a datatype node. Displacements/strides are
/// in bytes (already converted from MPI element units).
#[derive(Debug, Clone)]
pub enum DatatypeKind {
    /// A predefined elementary type.
    Elementary(Elementary),
    /// `count` consecutive copies of the child (spaced by child extent).
    Contiguous {
        /// Repetition count.
        count: u32,
    },
    /// `count` blocks of `blocklen` children, block `i` at byte offset
    /// `i * stride_bytes`.
    Vector {
        /// Number of blocks.
        count: u32,
        /// Children per block.
        blocklen: u32,
        /// Byte stride between block starts (may be negative).
        stride_bytes: i64,
    },
    /// Fixed-size blocks at arbitrary byte displacements.
    IndexedBlock {
        /// Children per block.
        blocklen: u32,
        /// Byte displacement of each block.
        displs_bytes: Arc<[i64]>,
    },
    /// Variable-size blocks at arbitrary byte displacements.
    Indexed {
        /// `(blocklen, byte displacement)` per block, in typemap order.
        blocks: Arc<[(u32, i64)]>,
    },
    /// Heterogeneous struct; each field has its own child type.
    Struct {
        /// The fields, in typemap order.
        fields: Arc<[StructField]>,
    },
    /// Extent override (`MPI_Type_create_resized`); data identical to the
    /// child, lb/extent replaced.
    Resized {
        /// New lower bound (bytes).
        lb: i64,
        /// New extent (bytes).
        extent: i64,
    },
}

/// Internal node: kind + child + cached derived quantities.
#[derive(Debug)]
pub struct DatatypeNode {
    /// Constructor variant.
    pub kind: DatatypeKind,
    /// Child type (None for elementary; Struct children live in the fields).
    pub child: Option<Datatype>,
    /// Total number of data bytes (the packed size).
    pub size: u64,
    /// Lower bound in bytes (start of the extent; may be negative).
    pub lb: i64,
    /// Upper bound in bytes (`lb + extent`).
    pub ub: i64,
    /// Lowest byte actually written (true lower bound).
    pub true_lb: i64,
    /// One past the highest byte actually written (true upper bound).
    pub true_ub: i64,
    /// Number of *leaf* contiguous blocks in the typemap (not merged).
    pub leaf_blocks: u64,
    /// Maximum constructor nesting depth (elementary = 0).
    pub depth: u32,
    /// `Some(run_bytes)` when the typemap is one single contiguous,
    /// in-stream-order run starting at `true_lb`. Used for leaf collapsing.
    pub contig_run: Option<u64>,
}

/// A committed-style, immutable, shareable datatype handle.
pub type Datatype = Arc<DatatypeNode>;

impl DatatypeNode {
    /// The extent in bytes (`ub - lb`), the spacing used when the type is
    /// repeated with a count.
    pub fn extent(&self) -> i64 {
        self.ub - self.lb
    }

    /// The true extent in bytes (span of bytes actually touched).
    pub fn true_extent(&self) -> i64 {
        self.true_ub - self.true_lb
    }

    /// Whether the typemap is a single in-order contiguous run.
    pub fn is_contiguous(&self) -> bool {
        self.contig_run.is_some()
    }

    /// Average contiguous-block length in bytes (size / leaf blocks).
    pub fn avg_block_len(&self) -> f64 {
        if self.leaf_blocks == 0 {
            0.0
        } else {
            self.size as f64 / self.leaf_blocks as f64
        }
    }

    /// A short human-readable signature of the type tree,
    /// e.g. `vector(vector(MPI_DOUBLE))`.
    pub fn signature(&self) -> String {
        let ctor = match &self.kind {
            DatatypeKind::Elementary(e) => return e.name().to_string(),
            DatatypeKind::Contiguous { .. } => "contiguous",
            DatatypeKind::Vector { .. } => "vector",
            DatatypeKind::IndexedBlock { .. } => "index_block",
            DatatypeKind::Indexed { .. } => "index",
            DatatypeKind::Struct { fields } => {
                let inner = fields.first().map(|f| f.ty.signature()).unwrap_or_default();
                return format!("struct({inner})");
            }
            DatatypeKind::Resized { .. } => {
                return self.child.as_ref().expect("resized child").signature()
            }
        };
        let inner = self
            .child
            .as_ref()
            .map(|c| c.signature())
            .unwrap_or_default();
        format!("{ctor}({inner})")
    }
}

#[allow(clippy::too_many_arguments)] // internal constructor aggregating cached node fields
fn mk(
    kind: DatatypeKind,
    child: Option<Datatype>,
    size: u64,
    lb: i64,
    ub: i64,
    true_lb: i64,
    true_ub: i64,
    leaf_blocks: u64,
    depth: u32,
    contig_run: Option<u64>,
) -> Datatype {
    Arc::new(DatatypeNode {
        kind,
        child,
        size,
        lb,
        ub,
        true_lb,
        true_ub,
        leaf_blocks,
        depth,
        contig_run,
    })
}

/// Accumulates bounds over a set of placed child instances.
struct Bounds {
    lb: i64,
    ub: i64,
    tlb: i64,
    tub: i64,
    any: bool,
}

impl Bounds {
    fn new() -> Self {
        Bounds {
            lb: 0,
            ub: 0,
            tlb: 0,
            tub: 0,
            any: false,
        }
    }

    fn add(&mut self, at: i64, child: &DatatypeNode) {
        let (lb, ub) = (at + child.lb, at + child.ub);
        let (tlb, tub) = (at + child.true_lb, at + child.true_ub);
        if !self.any {
            (self.lb, self.ub, self.tlb, self.tub) = (lb, ub, tlb, tub);
            self.any = true;
        } else {
            self.lb = self.lb.min(lb);
            self.ub = self.ub.max(ub);
            self.tlb = self.tlb.min(tlb);
            self.tub = self.tub.max(tub);
        }
    }
}

/// Constructor functions. These mirror the MPI `MPI_Type_*` calls; see the
/// module docs for unit conventions.
pub struct DatatypeBuilder;

/// Extension constructors on the `Datatype` handle.
pub trait DatatypeExt {
    /// `MPI_Type_contiguous`.
    fn contiguous(count: u32, base: &Datatype) -> Datatype;
    /// `MPI_Type_vector` — stride in multiples of the base extent.
    fn vector(count: u32, blocklen: u32, stride: i64, base: &Datatype) -> Datatype;
    /// `MPI_Type_create_hvector` — stride in bytes.
    fn hvector(count: u32, blocklen: u32, stride_bytes: i64, base: &Datatype) -> Datatype;
    /// `MPI_Type_create_indexed_block` — displacements in base extents.
    fn indexed_block(blocklen: u32, displs: &[i64], base: &Datatype) -> Result<Datatype>;
    /// `MPI_Type_create_hindexed_block` — displacements in bytes.
    fn hindexed_block(blocklen: u32, displs_bytes: &[i64], base: &Datatype) -> Result<Datatype>;
    /// `MPI_Type_indexed` — displacements in base extents.
    fn indexed(blocklens: &[u32], displs: &[i64], base: &Datatype) -> Result<Datatype>;
    /// `MPI_Type_create_hindexed` — displacements in bytes.
    fn hindexed(blocklens: &[u32], displs_bytes: &[i64], base: &Datatype) -> Result<Datatype>;
    /// `MPI_Type_create_struct`.
    fn struct_(blocklens: &[u32], displs_bytes: &[i64], types: &[Datatype]) -> Result<Datatype>;
    /// `MPI_Type_create_subarray`.
    fn subarray(
        sizes: &[u64],
        subsizes: &[u64],
        starts: &[u64],
        order: ArrayOrder,
        base: &Datatype,
    ) -> Result<Datatype>;
    /// `MPI_Type_create_resized`.
    fn resized(lb: i64, extent: i64, base: &Datatype) -> Datatype;
    /// An elementary type handle.
    fn elementary(e: Elementary) -> Datatype;
}

impl DatatypeExt for Datatype {
    fn elementary(e: Elementary) -> Datatype {
        let s = e.size() as i64;
        mk(
            DatatypeKind::Elementary(e),
            None,
            e.size(),
            0,
            s,
            0,
            s,
            1,
            0,
            Some(e.size()),
        )
    }

    fn contiguous(count: u32, base: &Datatype) -> Datatype {
        let ext = base.extent();
        let size = base.size * count as u64;
        let mut b = Bounds::new();
        for i in 0..count as i64 {
            b.add(i * ext, base);
        }
        if count == 0 {
            // Zero-count types are legal: empty map, zero extent.
            return mk(
                DatatypeKind::Contiguous { count },
                Some(base.clone()),
                0,
                0,
                0,
                0,
                0,
                0,
                base.depth + 1,
                None,
            );
        }
        // Contiguous-of-contiguous stays one run iff the child is one run
        // that exactly fills its extent (so copies abut in order).
        let contig_run = match base.contig_run {
            Some(run) if run as i64 == ext || count == 1 => Some(run * count as u64),
            _ => None,
        };
        mk(
            DatatypeKind::Contiguous { count },
            Some(base.clone()),
            size,
            b.lb,
            b.ub,
            b.tlb,
            b.tub,
            base.leaf_blocks * count as u64,
            base.depth + 1,
            contig_run,
        )
    }

    fn vector(count: u32, blocklen: u32, stride: i64, base: &Datatype) -> Datatype {
        Datatype::hvector(count, blocklen, stride * base.extent(), base)
    }

    fn hvector(count: u32, blocklen: u32, stride_bytes: i64, base: &Datatype) -> Datatype {
        let ext = base.extent();
        let block = Datatype::contiguous(blocklen, base);
        let size = block.size * count as u64;
        let mut b = Bounds::new();
        for i in 0..count as i64 {
            b.add(i * stride_bytes, &block);
        }
        if count == 0 || blocklen == 0 {
            return mk(
                DatatypeKind::Vector {
                    count,
                    blocklen,
                    stride_bytes,
                },
                Some(base.clone()),
                0,
                0,
                0,
                0,
                0,
                0,
                base.depth + 1,
                None,
            );
        }
        // One run iff each block is one run and consecutive blocks abut:
        // stride == blocklen * extent and block itself is a full-extent run.
        let block_run_full = base.contig_run.map(|r| r as i64 == ext).unwrap_or(false)
            || blocklen == 1 && base.is_contiguous() && base.size as i64 == ext;
        let contig_run = if count == 1 {
            block.contig_run
        } else if block_run_full && stride_bytes == blocklen as i64 * ext && stride_bytes > 0 {
            Some(size)
        } else {
            None
        };
        mk(
            DatatypeKind::Vector {
                count,
                blocklen,
                stride_bytes,
            },
            Some(base.clone()),
            size,
            b.lb,
            b.ub,
            b.tlb,
            b.tub,
            base.leaf_blocks * blocklen as u64 * count as u64,
            base.depth + 1,
            contig_run,
        )
    }

    fn indexed_block(blocklen: u32, displs: &[i64], base: &Datatype) -> Result<Datatype> {
        let ext = base.extent();
        let displs_bytes: Vec<i64> = displs.iter().map(|d| d * ext).collect();
        Datatype::hindexed_block(blocklen, &displs_bytes, base)
    }

    fn hindexed_block(blocklen: u32, displs_bytes: &[i64], base: &Datatype) -> Result<Datatype> {
        if displs_bytes.is_empty() {
            return Err(DdtError::EmptyConstructor("hindexed_block"));
        }
        let block = Datatype::contiguous(blocklen, base);
        let size = block.size * displs_bytes.len() as u64;
        let mut b = Bounds::new();
        for &d in displs_bytes {
            b.add(d, &block);
        }
        let contig_run = single_run_indexed(displs_bytes.iter().map(|&d| (d, block.size)), &block);
        Ok(mk(
            DatatypeKind::IndexedBlock {
                blocklen,
                displs_bytes: displs_bytes.into(),
            },
            Some(base.clone()),
            size,
            b.lb,
            b.ub,
            b.tlb,
            b.tub,
            base.leaf_blocks * blocklen as u64 * displs_bytes.len() as u64,
            base.depth + 1,
            contig_run,
        ))
    }

    fn indexed(blocklens: &[u32], displs: &[i64], base: &Datatype) -> Result<Datatype> {
        let ext = base.extent();
        let displs_bytes: Vec<i64> = displs.iter().map(|d| d * ext).collect();
        Datatype::hindexed(blocklens, &displs_bytes, base)
    }

    fn hindexed(blocklens: &[u32], displs_bytes: &[i64], base: &Datatype) -> Result<Datatype> {
        if blocklens.len() != displs_bytes.len() {
            return Err(DdtError::LengthMismatch {
                expected: blocklens.len(),
                got: displs_bytes.len(),
            });
        }
        if blocklens.is_empty() {
            return Err(DdtError::EmptyConstructor("hindexed"));
        }
        let blocks: Vec<(u32, i64)> = blocklens
            .iter()
            .copied()
            .zip(displs_bytes.iter().copied())
            .collect();
        let mut b = Bounds::new();
        let mut size = 0u64;
        let mut leaf_blocks = 0u64;
        for &(len, d) in &blocks {
            let blk = Datatype::contiguous(len, base);
            if len > 0 {
                b.add(d, &blk);
            }
            size += blk.size;
            leaf_blocks += base.leaf_blocks * len as u64;
        }
        let contig_run = if base
            .contig_run
            .map(|r| r as i64 == base.extent())
            .unwrap_or(false)
        {
            single_run_indexed(
                blocks.iter().map(|&(len, d)| (d, len as u64 * base.size)),
                base,
            )
        } else {
            None
        };
        Ok(mk(
            DatatypeKind::Indexed {
                blocks: blocks.into(),
            },
            Some(base.clone()),
            size,
            b.lb,
            b.ub,
            b.tlb,
            b.tub,
            leaf_blocks,
            base.depth + 1,
            contig_run,
        ))
    }

    fn struct_(blocklens: &[u32], displs_bytes: &[i64], types: &[Datatype]) -> Result<Datatype> {
        if blocklens.len() != displs_bytes.len() || blocklens.len() != types.len() {
            return Err(DdtError::LengthMismatch {
                expected: blocklens.len(),
                got: displs_bytes.len().min(types.len()),
            });
        }
        if blocklens.is_empty() {
            return Err(DdtError::EmptyConstructor("struct"));
        }
        let fields: Vec<StructField> = blocklens
            .iter()
            .zip(displs_bytes)
            .zip(types)
            .map(|((&count, &displ), ty)| StructField {
                count,
                displ,
                ty: ty.clone(),
            })
            .collect();
        let mut b = Bounds::new();
        let mut size = 0u64;
        let mut leaf_blocks = 0u64;
        let mut depth = 0u32;
        for f in &fields {
            let blk = Datatype::contiguous(f.count, &f.ty);
            if f.count > 0 && blk.size > 0 {
                b.add(f.displ, &blk);
            }
            size += blk.size;
            leaf_blocks += f.ty.leaf_blocks * f.count as u64;
            depth = depth.max(f.ty.depth);
        }
        // Structs are conservatively never collapsed to a single run unless
        // there is exactly one field that is itself a run.
        let contig_run = if fields.len() == 1 {
            let blk = Datatype::contiguous(fields[0].count, &fields[0].ty);
            blk.contig_run
        } else {
            None
        };
        Ok(mk(
            DatatypeKind::Struct {
                fields: fields.into(),
            },
            None,
            size,
            b.lb,
            b.ub,
            b.tlb,
            b.tub,
            leaf_blocks,
            depth + 1,
            contig_run,
        ))
    }

    fn subarray(
        sizes: &[u64],
        subsizes: &[u64],
        starts: &[u64],
        order: ArrayOrder,
        base: &Datatype,
    ) -> Result<Datatype> {
        let n = sizes.len();
        if n == 0 {
            return Err(DdtError::EmptyConstructor("subarray"));
        }
        if subsizes.len() != n || starts.len() != n {
            return Err(DdtError::LengthMismatch {
                expected: n,
                got: subsizes.len().min(starts.len()),
            });
        }
        for d in 0..n {
            if starts[d] + subsizes[d] > sizes[d] || subsizes[d] == 0 {
                return Err(DdtError::SubarrayOutOfBounds { dim: d });
            }
        }
        // Normalize to C order by reversing dimension arrays for Fortran.
        let (sizes, subsizes, starts): (Vec<u64>, Vec<u64>, Vec<u64>) = match order {
            ArrayOrder::C => (sizes.to_vec(), subsizes.to_vec(), starts.to_vec()),
            ArrayOrder::Fortran => (
                sizes.iter().rev().copied().collect(),
                subsizes.iter().rev().copied().collect(),
                starts.iter().rev().copied().collect(),
            ),
        };
        let ext = base.extent();
        // Row strides in bytes: stride[d] = prod(sizes[d+1..]) * extent.
        let mut stride = vec![0i64; n];
        let mut acc = ext;
        for d in (0..n).rev() {
            stride[d] = acc;
            acc *= sizes[d] as i64;
        }
        let total_extent = acc; // full array extent in bytes
        let offset: i64 = (0..n).map(|d| starts[d] as i64 * stride[d]).sum();

        // Innermost contiguous run of subsizes[n-1] elements.
        let mut t = Datatype::contiguous(subsizes[n - 1] as u32, base);
        for d in (0..n - 1).rev() {
            t = Datatype::hvector(subsizes[d] as u32, 1, stride[d], &t);
        }
        // Place at the start offset and give the type the full-array extent,
        // so `count > 1` sends step whole arrays.
        let placed = Datatype::hindexed_block(1, &[offset], &t)?;
        Ok(Datatype::resized(0, total_extent, &placed))
    }

    fn resized(lb: i64, extent: i64, base: &Datatype) -> Datatype {
        mk(
            DatatypeKind::Resized { lb, extent },
            Some(base.clone()),
            base.size,
            lb,
            lb + extent,
            base.true_lb,
            base.true_ub,
            base.leaf_blocks,
            base.depth, // resize is transparent to processing depth
            base.contig_run,
        )
    }
}

/// Check whether a sequence of `(offset, nbytes)` placed child runs forms a
/// single in-order contiguous run; the child must itself be a full-extent
/// run for its copies to abut.
fn single_run_indexed(
    blocks: impl Iterator<Item = (i64, u64)>,
    child: &DatatypeNode,
) -> Option<u64> {
    child.contig_run?;
    let mut expected: Option<i64> = None;
    let mut total = 0u64;
    for (off, nbytes) in blocks {
        if nbytes == 0 {
            continue;
        }
        match expected {
            Some(e) if e != off => return None,
            _ => {}
        }
        expected = Some(off + nbytes as i64);
        total += nbytes;
    }
    // A lone block is a run only if the child is (checked above).
    Some(total)
}

/// Shorthand constructors for the common elementary types.
pub mod elem {
    use super::{Datatype, DatatypeExt, Elementary};

    /// `MPI_BYTE`.
    pub fn byte() -> Datatype {
        Datatype::elementary(Elementary::Int8)
    }
    /// `MPI_INT`.
    pub fn int() -> Datatype {
        Datatype::elementary(Elementary::Int32)
    }
    /// `MPI_FLOAT`.
    pub fn float() -> Datatype {
        Datatype::elementary(Elementary::Float)
    }
    /// `MPI_DOUBLE`.
    pub fn double() -> Datatype {
        Datatype::elementary(Elementary::Double)
    }
    /// `MPI_C_DOUBLE_COMPLEX`.
    pub fn complex_double() -> Datatype {
        Datatype::elementary(Elementary::ComplexDouble)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementary_properties() {
        let d = elem::double();
        assert_eq!(d.size, 8);
        assert_eq!(d.extent(), 8);
        assert_eq!(d.leaf_blocks, 1);
        assert!(d.is_contiguous());
        assert_eq!(d.signature(), "MPI_DOUBLE");
    }

    #[test]
    fn contiguous_is_contiguous() {
        let t = Datatype::contiguous(10, &elem::int());
        assert_eq!(t.size, 40);
        assert_eq!(t.extent(), 40);
        assert!(t.is_contiguous());
        assert_eq!(t.contig_run, Some(40));
    }

    #[test]
    fn vector_gaps_not_contiguous() {
        // column of a 4x4 int matrix
        let t = Datatype::vector(4, 1, 4, &elem::int());
        assert_eq!(t.size, 16);
        assert_eq!(t.extent(), (3 * 4 + 1) * 4);
        assert!(!t.is_contiguous());
        assert_eq!(t.leaf_blocks, 4);
    }

    #[test]
    fn vector_without_gaps_is_contiguous() {
        let t = Datatype::vector(4, 2, 2, &elem::int());
        assert!(t.is_contiguous());
        assert_eq!(t.contig_run, Some(32));
    }

    #[test]
    fn negative_stride_vector_not_a_run() {
        let t = Datatype::vector(4, 1, -1, &elem::int());
        assert_eq!(t.size, 16);
        assert!(!t.is_contiguous());
        assert!(t.lb < 0);
        assert_eq!(t.extent(), 16); // -12..4
    }

    #[test]
    fn indexed_block_bounds() {
        let t = Datatype::indexed_block(2, &[0, 5, 10], &elem::int()).unwrap();
        assert_eq!(t.size, 24);
        assert_eq!(t.true_lb, 0);
        assert_eq!(t.true_ub, 48);
        assert_eq!(t.leaf_blocks, 3 * 2);
        assert!(!t.is_contiguous());
    }

    #[test]
    fn indexed_block_adjacent_is_run() {
        let t = Datatype::indexed_block(2, &[0, 2, 4], &elem::int()).unwrap();
        assert!(t.is_contiguous());
        assert_eq!(t.contig_run, Some(24));
    }

    #[test]
    fn indexed_variable_blocks() {
        let t = Datatype::indexed(&[1, 3], &[0, 2], &elem::double()).unwrap();
        assert_eq!(t.size, 32);
        assert_eq!(t.true_ub, 40);
        assert_eq!(t.leaf_blocks, 4);
    }

    #[test]
    fn struct_mixed() {
        let t = Datatype::struct_(&[1, 2], &[0, 8], &[elem::double(), elem::int()]).unwrap();
        assert_eq!(t.size, 16);
        assert_eq!(t.true_ub, 16);
        assert!(t.is_contiguous() || t.leaf_blocks == 3);
    }

    #[test]
    fn struct_length_mismatch() {
        let e = Datatype::struct_(&[1], &[0, 8], &[elem::int()]);
        assert!(e.is_err());
    }

    #[test]
    fn subarray_c_order() {
        // 4x6 int array, take rows 1..3, cols 2..5 (2x3 block)
        let t = Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], ArrayOrder::C, &elem::int()).unwrap();
        assert_eq!(t.size, 2 * 3 * 4);
        assert_eq!(t.extent(), 4 * 6 * 4); // full array extent
        assert_eq!(t.leaf_blocks, 2 * 3);
        // first byte: row 1, col 2 => (1*6+2)*4 = 32
        assert_eq!(t.true_lb, 32);
    }

    #[test]
    fn subarray_fortran_order() {
        let c = Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], ArrayOrder::C, &elem::int()).unwrap();
        let f = Datatype::subarray(&[6, 4], &[3, 2], &[2, 1], ArrayOrder::Fortran, &elem::int())
            .unwrap();
        assert_eq!(c.size, f.size);
        assert_eq!(c.true_lb, f.true_lb);
        assert_eq!(c.true_ub, f.true_ub);
    }

    #[test]
    fn subarray_full_is_contiguous() {
        let t = Datatype::subarray(&[4, 6], &[4, 6], &[0, 0], ArrayOrder::C, &elem::int()).unwrap();
        assert!(t.is_contiguous());
        assert_eq!(t.size, 96);
    }

    #[test]
    fn subarray_out_of_bounds() {
        let e = Datatype::subarray(&[4], &[3], &[2], ArrayOrder::C, &elem::int());
        assert!(matches!(e, Err(DdtError::SubarrayOutOfBounds { dim: 0 })));
    }

    #[test]
    fn resized_changes_extent_only() {
        let v = Datatype::vector(2, 1, 4, &elem::int());
        let r = Datatype::resized(0, 64, &v);
        assert_eq!(r.size, v.size);
        assert_eq!(r.extent(), 64);
        assert_eq!(r.true_ub, v.true_ub);
    }

    #[test]
    fn nested_vector_of_vector() {
        // MILC-style vector(vector(double))
        let inner = Datatype::vector(4, 2, 8, &elem::double());
        let outer = Datatype::vector(3, 1, 100, &inner);
        assert_eq!(outer.size, 3 * 4 * 2 * 8);
        // leaf_blocks counts elementary-granularity blocks (unmerged):
        // 3 outer x 4 inner blocks x 2 doubles each.
        assert_eq!(outer.leaf_blocks, 3 * 4 * 2);
        assert_eq!(outer.depth, inner.depth + 1);
        assert_eq!(outer.signature(), "vector(vector(MPI_DOUBLE))");
    }

    #[test]
    fn zero_count_types() {
        let t = Datatype::contiguous(0, &elem::int());
        assert_eq!(t.size, 0);
        assert_eq!(t.extent(), 0);
        let v = Datatype::hvector(0, 3, 16, &elem::int());
        assert_eq!(v.size, 0);
    }

    #[test]
    fn avg_block_len() {
        // Elementary granularity: 32 int-sized blocks of 4 bytes. The
        // merged contiguous-region count lives on the compiled dataloop.
        let t = Datatype::vector(8, 4, 8, &elem::int());
        assert!((t.avg_block_len() - 4.0).abs() < 1e-9);
    }
}
