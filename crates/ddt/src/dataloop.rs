//! Compiled ("committed") datatype representation: dataloops.
//!
//! Mirrors the MPITypes dataloop design (Ross, Miller, Gropp): the datatype
//! tree is compiled into a compact loop nest in which every contiguous
//! subtree is collapsed into a [`Body::Leaf`]. Leaves are what the NIC
//! handlers ultimately turn into DMA writes, so the number of leaves
//! emitted per packet is exactly the paper's γ (contiguous regions per
//! packet).
//!
//! Only four body kinds are needed (the MPITypes `contig`/`vector` pair
//! collapses into [`Body::Count`]; `blockindexed` keeps a dedicated
//! uniform-size body; `indexed` and `struct` share [`Body::Multi`]):
//!
//! * `Leaf { bytes, offset }` — a single contiguous run.
//! * `Count { count, step, child }` — `count` children at `i * step`.
//! * `BlockIndexed { offsets, child }` — uniform children at given offsets.
//! * `Multi { entries, prefix }` — heterogeneous children (struct, indexed
//!   with variable block lengths), with stream-size prefix sums for
//!   O(log n) random positioning.

use std::sync::Arc;

use crate::types::{Datatype, DatatypeKind};

/// One entry of a [`Body::Multi`] loop.
#[derive(Debug)]
pub struct MultiEntry {
    /// Byte offset of the child relative to the loop origin.
    pub offset: i64,
    /// The child dataloop.
    pub child: Arc<Dataloop>,
}

/// The body of a compiled dataloop node.
#[derive(Debug)]
pub enum Body {
    /// A contiguous run of `bytes` starting `offset` bytes from the node
    /// origin. Terminal.
    Leaf {
        /// Length of the run in bytes.
        bytes: u64,
        /// Start offset of the run relative to the node origin.
        offset: i64,
    },
    /// `count` copies of `child`, copy `i` placed at `i * step`.
    /// Encodes both MPI contiguous (`step == child extent`) and vector
    /// (`step == stride`) loops.
    Count {
        /// Repetitions.
        count: u64,
        /// Byte step between copies (may be negative).
        step: i64,
        /// Child loop.
        child: Arc<Dataloop>,
    },
    /// Uniform-size children at explicit offsets (indexed-block).
    BlockIndexed {
        /// Byte offset of each child.
        offsets: Arc<[i64]>,
        /// Child loop.
        child: Arc<Dataloop>,
    },
    /// Heterogeneous children (struct / variable-length indexed).
    Multi {
        /// Entries in typemap order.
        entries: Arc<[MultiEntry]>,
        /// `prefix[i]` = packed bytes before entry `i`; length =
        /// `entries.len() + 1`, last element = total size.
        prefix: Arc<[u64]>,
    },
}

/// A compiled dataloop node with cached totals.
#[derive(Debug)]
pub struct Dataloop {
    /// Node body.
    pub body: Body,
    /// Total packed bytes described by this node.
    pub size: u64,
    /// Number of leaf (contiguous-region) emissions.
    pub blocks: u64,
    /// Nesting depth (leaf = 1).
    pub depth: u32,
}

impl Dataloop {
    /// Number of child slots of this node (leaves have none).
    pub fn nblocks(&self) -> u64 {
        match &self.body {
            Body::Leaf { .. } => 0,
            Body::Count { count, .. } => *count,
            Body::BlockIndexed { offsets, .. } => offsets.len() as u64,
            Body::Multi { entries, .. } => entries.len() as u64,
        }
    }

    /// Byte offset of child `i` relative to this node's origin.
    pub fn block_offset(&self, i: u64) -> i64 {
        match &self.body {
            Body::Leaf { .. } => unreachable!("leaf has no blocks"),
            Body::Count { step, .. } => i as i64 * step,
            Body::BlockIndexed { offsets, .. } => offsets[i as usize],
            Body::Multi { entries, .. } => entries[i as usize].offset,
        }
    }

    /// The child dataloop at slot `i`.
    pub fn block_child(&self, i: u64) -> &Arc<Dataloop> {
        match &self.body {
            Body::Leaf { .. } => unreachable!("leaf has no blocks"),
            Body::Count { child, .. } | Body::BlockIndexed { child, .. } => child,
            Body::Multi { entries, .. } => &entries[i as usize].child,
        }
    }

    /// Packed bytes preceding child `i` within this node.
    pub fn block_prefix(&self, i: u64) -> u64 {
        match &self.body {
            Body::Leaf { .. } => 0,
            Body::Count { child, .. } | Body::BlockIndexed { child, .. } => i * child.size,
            Body::Multi { prefix, .. } => prefix[i as usize],
        }
    }

    /// Locate the child containing packed offset `within` (`< self.size`):
    /// returns `(child index, offset within child)`.
    pub fn find_block(&self, within: u64) -> (u64, u64) {
        debug_assert!(within < self.size);
        match &self.body {
            Body::Leaf { .. } => unreachable!("leaf has no blocks"),
            Body::Count { child, .. } | Body::BlockIndexed { child, .. } => {
                (within / child.size, within % child.size)
            }
            Body::Multi { prefix, .. } => {
                // partition_point gives the first prefix > within; entry is that - 1.
                let idx = prefix.partition_point(|&p| p <= within) - 1;
                (idx as u64, within - prefix[idx])
            }
        }
    }

    /// Bytes this dataloop description occupies when copied to NIC
    /// memory — the exact length of the serialized descriptor
    /// ([`crate::descr::encode`]); offset lists dominate, matching the
    /// paper's "data moved to the NIC" annotations for the general
    /// strategies.
    pub fn nic_descr_bytes(&self) -> u64 {
        crate::descr::encoded_len(self)
    }

    fn leaf(bytes: u64, offset: i64) -> Arc<Dataloop> {
        Arc::new(Dataloop {
            body: Body::Leaf { bytes, offset },
            size: bytes,
            blocks: u64::from(bytes > 0),
            depth: 1,
        })
    }

    fn count(count: u64, step: i64, child: Arc<Dataloop>) -> Arc<Dataloop> {
        let size = count * child.size;
        let blocks = count * child.blocks;
        let depth = child.depth + 1;
        Arc::new(Dataloop {
            body: Body::Count { count, step, child },
            size,
            blocks,
            depth,
        })
    }
}

/// Compile `count` copies of a datatype into a dataloop tree, collapsing
/// all contiguous subtrees into leaves. This is the "commit" step an MPI
/// implementation would perform in `MPI_Type_commit`.
pub fn compile(dt: &Datatype, count: u32) -> Arc<Dataloop> {
    let inner = compile_node(dt);
    if count == 1 {
        inner
    } else if inner.size == 0 || count == 0 {
        Dataloop::leaf(0, 0)
    } else {
        // Repetition steps by the datatype extent; collapse if the result
        // is still a single run.
        if let Body::Leaf { bytes, offset } = inner.body {
            if bytes as i64 == dt.extent() {
                return Dataloop::leaf(bytes * count as u64, offset);
            }
        }
        Dataloop::count(count as u64, dt.extent(), inner)
    }
}

fn compile_node(dt: &Datatype) -> Arc<Dataloop> {
    if dt.size == 0 {
        return Dataloop::leaf(0, 0);
    }
    if let Some(run) = dt.contig_run {
        return Dataloop::leaf(run, dt.true_lb);
    }
    let child_loop = |c: &Datatype| compile_node(c);
    match &dt.kind {
        DatatypeKind::Elementary(_) => unreachable!("elementary is always a run"),
        DatatypeKind::Resized { .. } => compile_node(dt.child.as_ref().expect("resized child")),
        DatatypeKind::Contiguous { count } => {
            let c = dt.child.as_ref().expect("contiguous child");
            Dataloop::count(*count as u64, c.extent(), child_loop(c))
        }
        DatatypeKind::Vector {
            count,
            blocklen,
            stride_bytes,
        } => {
            let c = dt.child.as_ref().expect("vector child");
            let block = compile_block(c, *blocklen);
            Dataloop::count(*count as u64, *stride_bytes, block)
        }
        DatatypeKind::IndexedBlock {
            blocklen,
            displs_bytes,
        } => {
            let c = dt.child.as_ref().expect("indexed_block child");
            let block = compile_block(c, *blocklen);
            let size = displs_bytes.len() as u64 * block.size;
            let blocks = displs_bytes.len() as u64 * block.blocks;
            let depth = block.depth + 1;
            Arc::new(Dataloop {
                body: Body::BlockIndexed {
                    offsets: displs_bytes.clone(),
                    child: block,
                },
                size,
                blocks,
                depth,
            })
        }
        DatatypeKind::Indexed { blocks } => {
            let c = dt.child.as_ref().expect("indexed child");
            let entries: Vec<MultiEntry> = blocks
                .iter()
                .filter(|&&(len, _)| len > 0)
                .map(|&(len, off)| MultiEntry {
                    offset: off,
                    child: compile_block(c, len),
                })
                .collect();
            multi(entries)
        }
        DatatypeKind::Struct { fields } => {
            let entries: Vec<MultiEntry> = fields
                .iter()
                .filter(|f| f.count > 0 && f.ty.size > 0)
                .map(|f| MultiEntry {
                    offset: f.displ,
                    child: compile_block(&f.ty, f.count),
                })
                .collect();
            multi(entries)
        }
    }
}

/// Compile `blocklen` consecutive copies of `c` (a loop "block"),
/// collapsing to a leaf when the copies abut into one run.
fn compile_block(c: &Datatype, blocklen: u32) -> Arc<Dataloop> {
    if blocklen == 0 || c.size == 0 {
        return Dataloop::leaf(0, 0);
    }
    match c.contig_run {
        Some(run) if blocklen == 1 => Dataloop::leaf(run, c.true_lb),
        Some(run) if run as i64 == c.extent() => Dataloop::leaf(run * blocklen as u64, c.true_lb),
        _ if blocklen == 1 => compile_node(c),
        _ => Dataloop::count(blocklen as u64, c.extent(), compile_node(c)),
    }
}

fn multi(entries: Vec<MultiEntry>) -> Arc<Dataloop> {
    let mut prefix = Vec::with_capacity(entries.len() + 1);
    let mut acc = 0u64;
    let mut blocks = 0u64;
    let mut depth = 0u32;
    for e in &entries {
        prefix.push(acc);
        acc += e.child.size;
        blocks += e.child.blocks;
        depth = depth.max(e.child.depth);
    }
    prefix.push(acc);
    Arc::new(Dataloop {
        body: Body::Multi {
            entries: entries.into(),
            prefix: prefix.into(),
        },
        size: acc,
        blocks,
        depth: depth + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{elem, ArrayOrder, DatatypeExt};

    #[test]
    fn contiguous_compiles_to_leaf() {
        let t = Datatype::contiguous(16, &elem::int());
        let dl = compile(&t, 1);
        assert!(matches!(
            dl.body,
            Body::Leaf {
                bytes: 64,
                offset: 0
            }
        ));
        assert_eq!(dl.blocks, 1);
    }

    #[test]
    fn vector_collapses_inner_block() {
        let t = Datatype::vector(8, 4, 16, &elem::int());
        let dl = compile(&t, 1);
        // one Count loop over 8 leaves of 16 bytes each
        match &dl.body {
            Body::Count {
                count: 8,
                step,
                child,
            } => {
                assert_eq!(*step, 64);
                assert!(matches!(child.body, Body::Leaf { bytes: 16, .. }));
            }
            other => panic!("unexpected body {other:?}"),
        }
        assert_eq!(dl.blocks, 8);
        assert_eq!(dl.depth, 2);
    }

    #[test]
    fn indexed_variable_uses_multi() {
        let t = Datatype::indexed(&[2, 5, 1], &[0, 10, 30], &elem::double()).unwrap();
        let dl = compile(&t, 1);
        match &dl.body {
            Body::Multi { entries, prefix } => {
                assert_eq!(entries.len(), 3);
                assert_eq!(prefix.as_ref(), &[0, 16, 56, 64]);
            }
            other => panic!("unexpected body {other:?}"),
        }
        assert_eq!(dl.size, 64);
        assert_eq!(dl.blocks, 3);
    }

    #[test]
    fn find_block_multi_boundaries() {
        let t = Datatype::indexed(&[2, 5, 1], &[0, 10, 30], &elem::double()).unwrap();
        let dl = compile(&t, 1);
        assert_eq!(dl.find_block(0), (0, 0));
        assert_eq!(dl.find_block(15), (0, 15));
        assert_eq!(dl.find_block(16), (1, 0));
        assert_eq!(dl.find_block(55), (1, 39));
        assert_eq!(dl.find_block(56), (2, 0));
        assert_eq!(dl.find_block(63), (2, 7));
    }

    #[test]
    fn count_repetition_with_gaps_keeps_loop() {
        let t = Datatype::vector(2, 1, 4, &elem::int());
        let dl = compile(&t, 3);
        match &dl.body {
            Body::Count { count: 3, step, .. } => assert_eq!(*step, t.extent()),
            other => panic!("unexpected body {other:?}"),
        }
        assert_eq!(dl.size, t.size * 3);
        assert_eq!(dl.blocks, 6);
    }

    #[test]
    fn count_repetition_of_full_run_collapses() {
        let t = Datatype::contiguous(4, &elem::int());
        let dl = compile(&t, 5);
        assert!(matches!(dl.body, Body::Leaf { bytes: 80, .. }));
    }

    #[test]
    fn subarray_block_count_matches_typemap() {
        let t = Datatype::subarray(
            &[6, 8, 4],
            &[2, 3, 4],
            &[1, 2, 0],
            ArrayOrder::C,
            &elem::float(),
        )
        .unwrap();
        let dl = compile(&t, 1);
        // Innermost dim fully taken (4 of 4, 16 B rows) and the middle
        // dim's rows abut (stride == row length), so each outer plane
        // slice is one 48 B run: 2 runs total.
        assert_eq!(dl.blocks, 2);
        assert_eq!(dl.size, t.size);
    }

    #[test]
    fn struct_of_subarrays_compiles() {
        let sa =
            Datatype::subarray(&[8, 8], &[2, 8], &[0, 0], ArrayOrder::C, &elem::double()).unwrap();
        let t = Datatype::struct_(&[1, 1], &[0, 4096], &[sa.clone(), sa]).unwrap();
        let dl = compile(&t, 1);
        assert_eq!(dl.size, t.size);
        assert!(dl.blocks >= 2);
    }

    #[test]
    fn nic_descr_bytes_scales_with_offsets() {
        let small = Datatype::indexed_block(1, &[0, 2, 4, 9], &elem::int()).unwrap();
        let displs: Vec<i64> = (0..1000).map(|i| i * 3).collect();
        let big = Datatype::indexed_block(1, &displs, &elem::int()).unwrap();
        let a = compile(&small, 1).nic_descr_bytes();
        let b = compile(&big, 1).nic_descr_bytes();
        assert!(b > a * 100);
    }

    #[test]
    fn zero_size_type_compiles_to_empty_leaf() {
        let t = Datatype::contiguous(0, &elem::int());
        let dl = compile(&t, 7);
        assert_eq!(dl.size, 0);
        assert_eq!(dl.blocks, 0);
    }
}
