//! Compiled ("committed") datatype representation: dataloops.
//!
//! Mirrors the MPITypes dataloop design (Ross, Miller, Gropp): the datatype
//! tree is compiled into a compact loop nest in which every contiguous
//! subtree is collapsed into a [`Body::Leaf`]. Leaves are what the NIC
//! handlers ultimately turn into DMA writes, so the number of leaves
//! emitted per packet is exactly the paper's γ (contiguous regions per
//! packet).
//!
//! Only four body kinds are needed (the MPITypes `contig`/`vector` pair
//! collapses into [`Body::Count`]; `blockindexed` keeps a dedicated
//! uniform-size body; `indexed` and `struct` share [`Body::Multi`]):
//!
//! * `Leaf { bytes, offset }` — a single contiguous run.
//! * `Count { count, step, child }` — `count` children at `i * step`.
//! * `BlockIndexed { offsets, child }` — uniform children at given offsets.
//! * `Multi { entries, prefix }` — heterogeneous children (struct, indexed
//!   with variable block lengths), with stream-size prefix sums for
//!   O(log n) random positioning.

use std::collections::HashMap;
use std::sync::Arc;

use crate::types::{Datatype, DatatypeKind};

/// One entry of a [`Body::Multi`] loop.
#[derive(Debug)]
pub struct MultiEntry {
    /// Byte offset of the child relative to the loop origin.
    pub offset: i64,
    /// The child dataloop.
    pub child: Arc<Dataloop>,
}

/// The body of a compiled dataloop node.
#[derive(Debug)]
pub enum Body {
    /// A contiguous run of `bytes` starting `offset` bytes from the node
    /// origin. Terminal.
    Leaf {
        /// Length of the run in bytes.
        bytes: u64,
        /// Start offset of the run relative to the node origin.
        offset: i64,
    },
    /// `count` copies of `child`, copy `i` placed at `i * step`.
    /// Encodes both MPI contiguous (`step == child extent`) and vector
    /// (`step == stride`) loops.
    Count {
        /// Repetitions.
        count: u64,
        /// Byte step between copies (may be negative).
        step: i64,
        /// Child loop.
        child: Arc<Dataloop>,
    },
    /// Uniform-size children at explicit offsets (indexed-block).
    BlockIndexed {
        /// Byte offset of each child.
        offsets: Arc<[i64]>,
        /// Child loop.
        child: Arc<Dataloop>,
    },
    /// Heterogeneous children (struct / variable-length indexed).
    Multi {
        /// Entries in typemap order.
        entries: Arc<[MultiEntry]>,
        /// `prefix[i]` = packed bytes before entry `i`; length =
        /// `entries.len() + 1`, last element = total size.
        prefix: Arc<[u64]>,
    },
}

/// A compiled dataloop node with cached totals.
#[derive(Debug)]
pub struct Dataloop {
    /// Node body.
    pub body: Body,
    /// Total packed bytes described by this node.
    pub size: u64,
    /// Number of leaf (contiguous-region) emissions.
    pub blocks: u64,
    /// Nesting depth (leaf = 1).
    pub depth: u32,
}

impl Dataloop {
    /// Number of child slots of this node (leaves have none).
    pub fn nblocks(&self) -> u64 {
        match &self.body {
            Body::Leaf { .. } => 0,
            Body::Count { count, .. } => *count,
            Body::BlockIndexed { offsets, .. } => offsets.len() as u64,
            Body::Multi { entries, .. } => entries.len() as u64,
        }
    }

    /// Byte offset of child `i` relative to this node's origin.
    pub fn block_offset(&self, i: u64) -> i64 {
        match &self.body {
            Body::Leaf { .. } => unreachable!("leaf has no blocks"),
            Body::Count { step, .. } => i as i64 * step,
            Body::BlockIndexed { offsets, .. } => offsets[i as usize],
            Body::Multi { entries, .. } => entries[i as usize].offset,
        }
    }

    /// The child dataloop at slot `i`.
    pub fn block_child(&self, i: u64) -> &Arc<Dataloop> {
        match &self.body {
            Body::Leaf { .. } => unreachable!("leaf has no blocks"),
            Body::Count { child, .. } | Body::BlockIndexed { child, .. } => child,
            Body::Multi { entries, .. } => &entries[i as usize].child,
        }
    }

    /// Packed bytes preceding child `i` within this node.
    pub fn block_prefix(&self, i: u64) -> u64 {
        match &self.body {
            Body::Leaf { .. } => 0,
            Body::Count { child, .. } | Body::BlockIndexed { child, .. } => i * child.size,
            Body::Multi { prefix, .. } => prefix[i as usize],
        }
    }

    /// Locate the child containing packed offset `within` (`< self.size`):
    /// returns `(child index, offset within child)`.
    pub fn find_block(&self, within: u64) -> (u64, u64) {
        debug_assert!(within < self.size);
        match &self.body {
            Body::Leaf { .. } => unreachable!("leaf has no blocks"),
            Body::Count { child, .. } | Body::BlockIndexed { child, .. } => {
                (within / child.size, within % child.size)
            }
            Body::Multi { prefix, .. } => {
                // partition_point gives the first prefix > within; entry is that - 1.
                let idx = prefix.partition_point(|&p| p <= within) - 1;
                (idx as u64, within - prefix[idx])
            }
        }
    }

    /// Bytes this dataloop description occupies when copied to NIC
    /// memory — the exact length of the serialized descriptor
    /// ([`crate::descr::encode`]); offset lists dominate, matching the
    /// paper's "data moved to the NIC" annotations for the general
    /// strategies.
    pub fn nic_descr_bytes(&self) -> u64 {
        crate::descr::encoded_len(self)
    }

    fn leaf(bytes: u64, offset: i64) -> Arc<Dataloop> {
        Arc::new(Dataloop {
            body: Body::Leaf { bytes, offset },
            size: bytes,
            blocks: u64::from(bytes > 0),
            depth: 1,
        })
    }

    fn count(count: u64, step: i64, child: Arc<Dataloop>) -> Arc<Dataloop> {
        let size = count * child.size;
        let blocks = count * child.blocks;
        let depth = child.depth + 1;
        Arc::new(Dataloop {
            body: Body::Count { count, step, child },
            size,
            blocks,
            depth,
        })
    }
}

/// Entries the process-wide compile cache holds before it is wiped and
/// repopulated (a sweep touches a handful of distinct types; the cap
/// only guards against pathological type-churn workloads).
const COMPILE_CACHE_CAP: usize = 256;

/// Cache key: a structural fingerprint of the full constructor tree
/// plus the cheap exact discriminants. A false hit would need two
/// different types with identical size, extent, leaf-block count *and*
/// a 64-bit FNV collision over their full constructor trees (every
/// count, stride, bound and displacement list is hashed).
#[derive(PartialEq, Eq, Hash)]
struct CompileKey {
    fingerprint: u64,
    size: u64,
    extent: i64,
    leaf_blocks: u64,
    count: u32,
}

static COMPILE_CACHE: std::sync::OnceLock<std::sync::Mutex<HashMap<CompileKey, Arc<Dataloop>>>> =
    std::sync::OnceLock::new();

/// FNV-1a over the full structural description of a type tree: the
/// constructor kind and all of its parameters at every node, recursing
/// into children/fields. Two types with equal fingerprints (and equal
/// cached discriminants, see [`CompileKey`]) compile to identical
/// dataloops.
fn fingerprint(dt: &Datatype) -> u64 {
    fn mix(h: &mut u64, v: u64) {
        // FNV-1a, folded a byte at a time.
        for b in v.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn node(h: &mut u64, dt: &Datatype) {
        mix(h, dt.lb as u64);
        mix(h, dt.ub as u64);
        mix(h, dt.true_lb as u64);
        mix(h, dt.true_ub as u64);
        mix(h, dt.size);
        match &dt.kind {
            DatatypeKind::Elementary(e) => {
                mix(h, 1);
                for b in e.name().bytes() {
                    mix(h, b as u64);
                }
            }
            DatatypeKind::Contiguous { count } => {
                mix(h, 2);
                mix(h, *count as u64);
            }
            DatatypeKind::Vector {
                count,
                blocklen,
                stride_bytes,
            } => {
                mix(h, 3);
                mix(h, *count as u64);
                mix(h, *blocklen as u64);
                mix(h, *stride_bytes as u64);
            }
            DatatypeKind::IndexedBlock {
                blocklen,
                displs_bytes,
            } => {
                mix(h, 4);
                mix(h, *blocklen as u64);
                mix(h, displs_bytes.len() as u64);
                for &d in displs_bytes.iter() {
                    mix(h, d as u64);
                }
            }
            DatatypeKind::Indexed { blocks } => {
                mix(h, 5);
                mix(h, blocks.len() as u64);
                for &(len, off) in blocks.iter() {
                    mix(h, len as u64);
                    mix(h, off as u64);
                }
            }
            DatatypeKind::Struct { fields } => {
                mix(h, 6);
                mix(h, fields.len() as u64);
                for f in fields.iter() {
                    mix(h, f.count as u64);
                    mix(h, f.displ as u64);
                    node(h, &f.ty);
                }
            }
            DatatypeKind::Resized { .. } => {
                mix(h, 7);
            }
        }
        if let Some(c) = &dt.child {
            mix(h, 8);
            node(h, c);
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    node(&mut h, dt);
    h
}

/// Like [`compile`], but through a process-wide, thread-safe cache
/// keyed by the type's structural signature, so identical workloads
/// across concurrent sweep jobs (every seed × scale cell of a fault
/// sweep re-receives the same datatype) pay the compile — offset-list
/// materialization included — exactly once. The returned `Arc` is
/// shared between all hits; dataloops are immutable, so sharing is
/// invisible to callers.
pub fn compile_cached(dt: &Datatype, count: u32) -> Arc<Dataloop> {
    let key = CompileKey {
        fingerprint: fingerprint(dt),
        size: dt.size,
        extent: dt.extent(),
        leaf_blocks: dt.leaf_blocks,
        count,
    };
    let cache = COMPILE_CACHE.get_or_init(|| std::sync::Mutex::new(HashMap::new()));
    if let Some(dl) = cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&key)
        .cloned()
    {
        return dl;
    }
    // Compile outside the lock: concurrent first-misses of *different*
    // types shouldn't serialize on each other.
    let dl = compile(dt, count);
    let mut g = cache.lock().unwrap_or_else(|e| e.into_inner());
    if g.len() >= COMPILE_CACHE_CAP {
        g.clear();
    }
    g.entry(key).or_insert_with(|| dl.clone());
    dl
}

/// Compile `count` copies of a datatype into a dataloop tree, collapsing
/// all contiguous subtrees into leaves. This is the "commit" step an MPI
/// implementation would perform in `MPI_Type_commit`.
pub fn compile(dt: &Datatype, count: u32) -> Arc<Dataloop> {
    let inner = compile_node(dt);
    if count == 1 {
        inner
    } else if inner.size == 0 || count == 0 {
        Dataloop::leaf(0, 0)
    } else {
        // Repetition steps by the datatype extent; collapse if the result
        // is still a single run.
        if let Body::Leaf { bytes, offset } = inner.body {
            if bytes as i64 == dt.extent() {
                return Dataloop::leaf(bytes * count as u64, offset);
            }
        }
        Dataloop::count(count as u64, dt.extent(), inner)
    }
}

fn compile_node(dt: &Datatype) -> Arc<Dataloop> {
    if dt.size == 0 {
        return Dataloop::leaf(0, 0);
    }
    if let Some(run) = dt.contig_run {
        return Dataloop::leaf(run, dt.true_lb);
    }
    let child_loop = |c: &Datatype| compile_node(c);
    match &dt.kind {
        DatatypeKind::Elementary(_) => unreachable!("elementary is always a run"),
        DatatypeKind::Resized { .. } => compile_node(dt.child.as_ref().expect("resized child")),
        DatatypeKind::Contiguous { count } => {
            let c = dt.child.as_ref().expect("contiguous child");
            Dataloop::count(*count as u64, c.extent(), child_loop(c))
        }
        DatatypeKind::Vector {
            count,
            blocklen,
            stride_bytes,
        } => {
            let c = dt.child.as_ref().expect("vector child");
            let block = compile_block(c, *blocklen);
            Dataloop::count(*count as u64, *stride_bytes, block)
        }
        DatatypeKind::IndexedBlock {
            blocklen,
            displs_bytes,
        } => {
            let c = dt.child.as_ref().expect("indexed_block child");
            let block = compile_block(c, *blocklen);
            let size = displs_bytes.len() as u64 * block.size;
            let blocks = displs_bytes.len() as u64 * block.blocks;
            let depth = block.depth + 1;
            Arc::new(Dataloop {
                body: Body::BlockIndexed {
                    offsets: displs_bytes.clone(),
                    child: block,
                },
                size,
                blocks,
                depth,
            })
        }
        DatatypeKind::Indexed { blocks } => {
            let c = dt.child.as_ref().expect("indexed child");
            let entries: Vec<MultiEntry> = blocks
                .iter()
                .filter(|&&(len, _)| len > 0)
                .map(|&(len, off)| MultiEntry {
                    offset: off,
                    child: compile_block(c, len),
                })
                .collect();
            multi(entries)
        }
        DatatypeKind::Struct { fields } => {
            let entries: Vec<MultiEntry> = fields
                .iter()
                .filter(|f| f.count > 0 && f.ty.size > 0)
                .map(|f| MultiEntry {
                    offset: f.displ,
                    child: compile_block(&f.ty, f.count),
                })
                .collect();
            multi(entries)
        }
    }
}

/// Compile `blocklen` consecutive copies of `c` (a loop "block"),
/// collapsing to a leaf when the copies abut into one run.
fn compile_block(c: &Datatype, blocklen: u32) -> Arc<Dataloop> {
    if blocklen == 0 || c.size == 0 {
        return Dataloop::leaf(0, 0);
    }
    match c.contig_run {
        Some(run) if blocklen == 1 => Dataloop::leaf(run, c.true_lb),
        Some(run) if run as i64 == c.extent() => Dataloop::leaf(run * blocklen as u64, c.true_lb),
        _ if blocklen == 1 => compile_node(c),
        _ => Dataloop::count(blocklen as u64, c.extent(), compile_node(c)),
    }
}

fn multi(entries: Vec<MultiEntry>) -> Arc<Dataloop> {
    let mut prefix = Vec::with_capacity(entries.len() + 1);
    let mut acc = 0u64;
    let mut blocks = 0u64;
    let mut depth = 0u32;
    for e in &entries {
        prefix.push(acc);
        acc += e.child.size;
        blocks += e.child.blocks;
        depth = depth.max(e.child.depth);
    }
    prefix.push(acc);
    Arc::new(Dataloop {
        body: Body::Multi {
            entries: entries.into(),
            prefix: prefix.into(),
        },
        size: acc,
        blocks,
        depth: depth + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{elem, ArrayOrder, DatatypeExt};

    #[test]
    fn contiguous_compiles_to_leaf() {
        let t = Datatype::contiguous(16, &elem::int());
        let dl = compile(&t, 1);
        assert!(matches!(
            dl.body,
            Body::Leaf {
                bytes: 64,
                offset: 0
            }
        ));
        assert_eq!(dl.blocks, 1);
    }

    #[test]
    fn vector_collapses_inner_block() {
        let t = Datatype::vector(8, 4, 16, &elem::int());
        let dl = compile(&t, 1);
        // one Count loop over 8 leaves of 16 bytes each
        match &dl.body {
            Body::Count {
                count: 8,
                step,
                child,
            } => {
                assert_eq!(*step, 64);
                assert!(matches!(child.body, Body::Leaf { bytes: 16, .. }));
            }
            other => panic!("unexpected body {other:?}"),
        }
        assert_eq!(dl.blocks, 8);
        assert_eq!(dl.depth, 2);
    }

    #[test]
    fn indexed_variable_uses_multi() {
        let t = Datatype::indexed(&[2, 5, 1], &[0, 10, 30], &elem::double()).unwrap();
        let dl = compile(&t, 1);
        match &dl.body {
            Body::Multi { entries, prefix } => {
                assert_eq!(entries.len(), 3);
                assert_eq!(prefix.as_ref(), &[0, 16, 56, 64]);
            }
            other => panic!("unexpected body {other:?}"),
        }
        assert_eq!(dl.size, 64);
        assert_eq!(dl.blocks, 3);
    }

    #[test]
    fn find_block_multi_boundaries() {
        let t = Datatype::indexed(&[2, 5, 1], &[0, 10, 30], &elem::double()).unwrap();
        let dl = compile(&t, 1);
        assert_eq!(dl.find_block(0), (0, 0));
        assert_eq!(dl.find_block(15), (0, 15));
        assert_eq!(dl.find_block(16), (1, 0));
        assert_eq!(dl.find_block(55), (1, 39));
        assert_eq!(dl.find_block(56), (2, 0));
        assert_eq!(dl.find_block(63), (2, 7));
    }

    #[test]
    fn count_repetition_with_gaps_keeps_loop() {
        let t = Datatype::vector(2, 1, 4, &elem::int());
        let dl = compile(&t, 3);
        match &dl.body {
            Body::Count { count: 3, step, .. } => assert_eq!(*step, t.extent()),
            other => panic!("unexpected body {other:?}"),
        }
        assert_eq!(dl.size, t.size * 3);
        assert_eq!(dl.blocks, 6);
    }

    #[test]
    fn count_repetition_of_full_run_collapses() {
        let t = Datatype::contiguous(4, &elem::int());
        let dl = compile(&t, 5);
        assert!(matches!(dl.body, Body::Leaf { bytes: 80, .. }));
    }

    #[test]
    fn subarray_block_count_matches_typemap() {
        let t = Datatype::subarray(
            &[6, 8, 4],
            &[2, 3, 4],
            &[1, 2, 0],
            ArrayOrder::C,
            &elem::float(),
        )
        .unwrap();
        let dl = compile(&t, 1);
        // Innermost dim fully taken (4 of 4, 16 B rows) and the middle
        // dim's rows abut (stride == row length), so each outer plane
        // slice is one 48 B run: 2 runs total.
        assert_eq!(dl.blocks, 2);
        assert_eq!(dl.size, t.size);
    }

    #[test]
    fn struct_of_subarrays_compiles() {
        let sa =
            Datatype::subarray(&[8, 8], &[2, 8], &[0, 0], ArrayOrder::C, &elem::double()).unwrap();
        let t = Datatype::struct_(&[1, 1], &[0, 4096], &[sa.clone(), sa]).unwrap();
        let dl = compile(&t, 1);
        assert_eq!(dl.size, t.size);
        assert!(dl.blocks >= 2);
    }

    #[test]
    fn nic_descr_bytes_scales_with_offsets() {
        let small = Datatype::indexed_block(1, &[0, 2, 4, 9], &elem::int()).unwrap();
        let displs: Vec<i64> = (0..1000).map(|i| i * 3).collect();
        let big = Datatype::indexed_block(1, &displs, &elem::int()).unwrap();
        let a = compile(&small, 1).nic_descr_bytes();
        let b = compile(&big, 1).nic_descr_bytes();
        assert!(b > a * 100);
    }

    #[test]
    fn zero_size_type_compiles_to_empty_leaf() {
        let t = Datatype::contiguous(0, &elem::int());
        let dl = compile(&t, 7);
        assert_eq!(dl.size, 0);
        assert_eq!(dl.blocks, 0);
    }

    #[test]
    fn cache_shares_one_dataloop_across_equal_types() {
        // Structurally equal types built from *separate* allocations hit
        // the same cache entry; different parameters miss.
        let a = Datatype::vector(700, 3, 9, &elem::double());
        let b = Datatype::vector(700, 3, 9, &elem::double());
        let dl_a = compile_cached(&a, 2);
        let dl_b = compile_cached(&b, 2);
        assert!(Arc::ptr_eq(&dl_a, &dl_b), "equal types share the compile");
        assert!(
            !Arc::ptr_eq(&compile_cached(&a, 3), &dl_a),
            "count is part of the key"
        );
        let c = Datatype::vector(700, 3, 10, &elem::double());
        assert!(
            !Arc::ptr_eq(&compile_cached(&c, 2), &dl_a),
            "stride is part of the key"
        );
        // And the cached loop is the same structure compile() builds.
        let fresh = compile(&a, 2);
        assert_eq!(dl_a.size, fresh.size);
        assert_eq!(dl_a.blocks, fresh.blocks);
        assert_eq!(dl_a.depth, fresh.depth);
    }

    #[test]
    fn cache_distinguishes_offset_lists() {
        let x = Datatype::indexed_block(2, &[0, 8, 32, 40], &elem::int()).unwrap();
        let y = Datatype::indexed_block(2, &[0, 8, 32, 48], &elem::int()).unwrap();
        // Same size / blocklen / block count — only a displacement
        // differs, so the fingerprint must separate them.
        let dx = compile_cached(&x, 1);
        let dy = compile_cached(&y, 1);
        assert!(!Arc::ptr_eq(&dx, &dy));
        match (&dx.body, &dy.body) {
            (Body::BlockIndexed { offsets: ox, .. }, Body::BlockIndexed { offsets: oy, .. }) => {
                assert_ne!(ox.as_ref(), oy.as_ref());
            }
            other => panic!("unexpected bodies {other:?}"),
        }
    }

    #[test]
    fn cache_is_thread_safe_and_converges() {
        let t = Datatype::vector(123, 5, 11, &elem::float());
        let loops: Vec<Arc<Dataloop>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8).map(|_| s.spawn(|| compile_cached(&t, 4))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // However the first-miss race resolved, every caller ends up
        // with a loop equivalent to a fresh compile.
        let fresh = compile(&t, 4);
        for dl in &loops {
            assert_eq!(dl.size, fresh.size);
            assert_eq!(dl.blocks, fresh.blocks);
        }
        // And subsequent lookups all share one entry.
        let one = compile_cached(&t, 4);
        assert!(Arc::ptr_eq(&one, &compile_cached(&t, 4)));
    }
}
