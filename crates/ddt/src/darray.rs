//! `MPI_Type_create_darray` — distributed-array datatypes.
//!
//! Describes one process's share of an n-dimensional global array under
//! per-dimension block or cyclic distributions over a process grid —
//! the datatype HPC I/O and halo frameworks generate. Built (like
//! subarray) from nested `hvector`s, so the whole offload machinery
//! applies unchanged.

use crate::error::{DdtError, Result};
use crate::types::{ArrayOrder, Datatype, DatatypeExt};

/// Per-dimension distribution (subset of the MPI `MPI_DISTRIBUTE_*`
/// constants: block and cyclic with default distribution argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// `MPI_DISTRIBUTE_BLOCK` with `MPI_DISTRIBUTE_DFLT_DARG`:
    /// contiguous blocks of `ceil(size/procs)`.
    Block,
    /// `MPI_DISTRIBUTE_CYCLIC` with default argument: element-wise
    /// round-robin.
    Cyclic,
    /// `MPI_DISTRIBUTE_NONE`: the dimension is not distributed.
    None,
}

/// Construct the datatype describing the local share of a global array.
///
/// * `gsizes` — global array extent per dimension.
/// * `distribs` — distribution per dimension.
/// * `psizes` — process-grid extent per dimension.
/// * `coords` — this process's grid coordinate per dimension.
pub fn darray(
    gsizes: &[u64],
    distribs: &[Distribution],
    psizes: &[u64],
    coords: &[u64],
    order: ArrayOrder,
    base: &Datatype,
) -> Result<Datatype> {
    let n = gsizes.len();
    if n == 0 {
        return Err(DdtError::EmptyConstructor("darray"));
    }
    if distribs.len() != n || psizes.len() != n || coords.len() != n {
        return Err(DdtError::LengthMismatch {
            expected: n,
            got: distribs.len().min(psizes.len()).min(coords.len()),
        });
    }
    for d in 0..n {
        if psizes[d] == 0 || coords[d] >= psizes[d] {
            return Err(DdtError::SubarrayOutOfBounds { dim: d });
        }
        if matches!(distribs[d], Distribution::None) && psizes[d] != 1 {
            return Err(DdtError::SubarrayOutOfBounds { dim: d });
        }
    }
    // Normalize to C order.
    let (gsizes, distribs, psizes, coords): (Vec<u64>, Vec<Distribution>, Vec<u64>, Vec<u64>) =
        match order {
            ArrayOrder::C => (
                gsizes.to_vec(),
                distribs.to_vec(),
                psizes.to_vec(),
                coords.to_vec(),
            ),
            ArrayOrder::Fortran => (
                gsizes.iter().rev().copied().collect(),
                distribs.iter().rev().copied().collect(),
                psizes.iter().rev().copied().collect(),
                coords.iter().rev().copied().collect(),
            ),
        };
    let ext = base.extent();
    // Row strides in bytes.
    let mut stride = vec![0i64; n];
    let mut acc = ext;
    for d in (0..n).rev() {
        stride[d] = acc;
        acc *= gsizes[d] as i64;
    }
    let total_extent = acc;

    // Build from the innermost dimension out; each level describes the
    // local elements of that dimension applied to the inner type, with
    // an accumulated shift applied once at the end.
    let mut t = base.clone();
    let mut offset = 0i64;
    for d in (0..n).rev() {
        match distribs[d] {
            Distribution::None => {
                t = Datatype::hvector(gsizes[d] as u32, 1, stride[d], &t);
            }
            Distribution::Block => {
                let b = gsizes[d].div_ceil(psizes[d]);
                let start = (coords[d] * b).min(gsizes[d]);
                let len = b.min(gsizes[d] - start);
                if len == 0 {
                    // This process holds nothing in this dimension:
                    // zero-size type.
                    return Ok(Datatype::contiguous(0, base));
                }
                t = Datatype::hvector(len as u32, 1, stride[d], &t);
                offset += start as i64 * stride[d];
            }
            Distribution::Cyclic => {
                let len = (gsizes[d] + psizes[d] - 1 - coords[d]) / psizes[d];
                if len == 0 {
                    return Ok(Datatype::contiguous(0, base));
                }
                t = Datatype::hvector(len as u32, 1, psizes[d] as i64 * stride[d], &t);
                offset += coords[d] as i64 * stride[d];
            }
        }
    }
    let placed = if offset == 0 {
        t
    } else {
        Datatype::hindexed_block(1, &[offset], &t)?
    };
    Ok(Datatype::resized(0, total_extent, &placed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typemap;
    use crate::types::elem;
    use std::collections::HashSet;

    /// The defining property: the ranks' typemaps tile the global array
    /// exactly once.
    fn assert_tiles(gsizes: &[u64], distribs: &[Distribution], psizes: &[u64], order: ArrayOrder) {
        let base = elem::int();
        let total: u64 = gsizes.iter().product::<u64>() * 4;
        let nprocs: u64 = psizes.iter().product();
        let mut covered: HashSet<i64> = HashSet::new();
        let mut sum = 0u64;
        // enumerate grid coordinates
        for rank in 0..nprocs {
            let mut coords = vec![0u64; psizes.len()];
            let mut rest = rank;
            for d in (0..psizes.len()).rev() {
                coords[d] = rest % psizes[d];
                rest /= psizes[d];
            }
            let dt = darray(gsizes, distribs, psizes, &coords, order, &base).expect("valid");
            sum += dt.size;
            for (off, len) in typemap::blocks(&dt, 1) {
                for b in off..off + len as i64 {
                    assert!(covered.insert(b), "byte {b} covered twice (rank {rank})");
                }
            }
            assert_eq!(dt.extent(), total as i64, "full-array extent");
        }
        assert_eq!(sum, total, "ranks must partition the array");
        assert_eq!(covered.len() as u64, total);
    }

    #[test]
    fn block_block_2d_tiles() {
        assert_tiles(
            &[8, 12],
            &[Distribution::Block, Distribution::Block],
            &[2, 3],
            ArrayOrder::C,
        );
    }

    #[test]
    fn cyclic_rows_tile() {
        assert_tiles(
            &[9, 4],
            &[Distribution::Cyclic, Distribution::None],
            &[3, 1],
            ArrayOrder::C,
        );
    }

    #[test]
    fn mixed_block_cyclic_tiles() {
        assert_tiles(
            &[8, 9],
            &[Distribution::Block, Distribution::Cyclic],
            &[2, 3],
            ArrayOrder::C,
        );
    }

    #[test]
    fn fortran_order_tiles() {
        assert_tiles(
            &[6, 8],
            &[Distribution::Block, Distribution::Block],
            &[3, 2],
            ArrayOrder::Fortran,
        );
    }

    #[test]
    fn uneven_block_last_rank_short() {
        // 10 elements over 4 procs, block = 3: ranks get 3,3,3,1.
        let base = elem::double();
        let sizes: Vec<u64> = (0..4)
            .map(|r| {
                darray(
                    &[10],
                    &[Distribution::Block],
                    &[4],
                    &[r],
                    ArrayOrder::C,
                    &base,
                )
                .expect("valid")
                .size
                    / 8
            })
            .collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn block_equals_subarray() {
        // A 1D/2D block distribution is the same as a subarray.
        let base = elem::float();
        let dar = darray(
            &[12, 10],
            &[Distribution::Block, Distribution::None],
            &[3, 1],
            &[1, 0],
            ArrayOrder::C,
            &base,
        )
        .expect("valid");
        let sub =
            Datatype::subarray(&[12, 10], &[4, 10], &[4, 0], ArrayOrder::C, &base).expect("valid");
        assert_eq!(typemap::blocks(&dar, 1), typemap::blocks(&sub, 1));
    }

    #[test]
    fn rejects_bad_grid() {
        let base = elem::int();
        assert!(darray(
            &[8],
            &[Distribution::Block],
            &[4],
            &[4],
            ArrayOrder::C,
            &base
        )
        .is_err());
        assert!(darray(
            &[8],
            &[Distribution::None],
            &[2],
            &[0],
            ArrayOrder::C,
            &base
        )
        .is_err());
    }
}
