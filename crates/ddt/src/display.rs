//! Datatype introspection and pretty-printing.
//!
//! MPI exposes `MPI_Type_get_envelope`/`MPI_Type_get_contents` so tools
//! can inspect committed types; this module provides the equivalent:
//! [`envelope`] returns the combiner and its arguments, [`dump`] renders
//! the full tree with derived properties — used by the `ncmt` CLI and
//! invaluable when debugging offload decisions.

use std::fmt::Write as _;

use crate::types::{Datatype, DatatypeKind};

/// The combiner that created a type (mirrors `MPI_COMBINER_*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Envelope {
    /// A predefined type.
    Named {
        /// MPI-style name.
        name: &'static str,
    },
    /// `MPI_Type_contiguous(count)`.
    Contiguous {
        /// Repetition count.
        count: u32,
    },
    /// `MPI_Type_create_hvector(count, blocklen, stride_bytes)`.
    Hvector {
        /// Blocks.
        count: u32,
        /// Children per block.
        blocklen: u32,
        /// Byte stride.
        stride_bytes: i64,
    },
    /// `MPI_Type_create_hindexed_block(blocklen, displs)`.
    HindexedBlock {
        /// Children per block.
        blocklen: u32,
        /// Displacement count.
        nblocks: usize,
    },
    /// `MPI_Type_create_hindexed(blocklens, displs)`.
    Hindexed {
        /// Block count.
        nblocks: usize,
    },
    /// `MPI_Type_create_struct(...)`.
    Struct {
        /// Field count.
        nfields: usize,
    },
    /// `MPI_Type_create_resized(lb, extent)`.
    Resized {
        /// Lower bound.
        lb: i64,
        /// Extent.
        extent: i64,
    },
}

/// The combiner of a type's outermost constructor.
pub fn envelope(dt: &Datatype) -> Envelope {
    match &dt.kind {
        DatatypeKind::Elementary(e) => Envelope::Named { name: e.name() },
        DatatypeKind::Contiguous { count } => Envelope::Contiguous { count: *count },
        DatatypeKind::Vector {
            count,
            blocklen,
            stride_bytes,
        } => Envelope::Hvector {
            count: *count,
            blocklen: *blocklen,
            stride_bytes: *stride_bytes,
        },
        DatatypeKind::IndexedBlock {
            blocklen,
            displs_bytes,
        } => Envelope::HindexedBlock {
            blocklen: *blocklen,
            nblocks: displs_bytes.len(),
        },
        DatatypeKind::Indexed { blocks } => Envelope::Hindexed {
            nblocks: blocks.len(),
        },
        DatatypeKind::Struct { fields } => Envelope::Struct {
            nfields: fields.len(),
        },
        DatatypeKind::Resized { lb, extent } => Envelope::Resized {
            lb: *lb,
            extent: *extent,
        },
    }
}

/// Render the datatype tree with derived properties, one node per line.
pub fn dump(dt: &Datatype) -> String {
    let mut out = String::new();
    dump_node(dt, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn dump_node(dt: &Datatype, depth: usize, out: &mut String) {
    indent(depth, out);
    match &dt.kind {
        DatatypeKind::Elementary(e) => {
            let _ = writeln!(out, "{} ({} B)", e.name(), e.size());
            return;
        }
        DatatypeKind::Contiguous { count } => {
            let _ = writeln!(
                out,
                "contiguous(count={count}) size={} extent={}",
                dt.size,
                dt.extent()
            );
        }
        DatatypeKind::Vector {
            count,
            blocklen,
            stride_bytes,
        } => {
            let _ = writeln!(
                out,
                "hvector(count={count}, blocklen={blocklen}, stride={stride_bytes}B) size={} extent={}",
                dt.size,
                dt.extent()
            );
        }
        DatatypeKind::IndexedBlock {
            blocklen,
            displs_bytes,
        } => {
            let _ = writeln!(
                out,
                "hindexed_block(blocklen={blocklen}, blocks={}) size={} extent={}",
                displs_bytes.len(),
                dt.size,
                dt.extent()
            );
        }
        DatatypeKind::Indexed { blocks } => {
            let _ = writeln!(
                out,
                "hindexed(blocks={}) size={} extent={}",
                blocks.len(),
                dt.size,
                dt.extent()
            );
        }
        DatatypeKind::Struct { fields } => {
            let _ = writeln!(
                out,
                "struct(fields={}) size={} extent={}",
                fields.len(),
                dt.size,
                dt.extent()
            );
            for f in fields.iter() {
                indent(depth + 1, out);
                let _ = writeln!(out, "field @{} x{}:", f.displ, f.count);
                dump_node(&f.ty, depth + 2, out);
            }
            return;
        }
        DatatypeKind::Resized { lb, extent } => {
            let _ = writeln!(out, "resized(lb={lb}, extent={extent}) size={}", dt.size);
        }
    }
    if let Some(child) = &dt.child {
        dump_node(child, depth + 1, out);
    }
}

/// Structural typemap equality: two types are map-equal when their
/// merged `(offset, len)` sequences coincide (MPI's notion of "the same
/// data layout", independent of the constructor path).
pub fn typemap_equal(a: &Datatype, b: &Datatype) -> bool {
    if a.size != b.size {
        return false;
    }
    merged(a) == merged(b)
}

fn merged(dt: &Datatype) -> Vec<(i64, u64)> {
    let mut out: Vec<(i64, u64)> = Vec::new();
    crate::typemap::for_each_block(dt, 1, |off, len| {
        if len == 0 {
            return;
        }
        match out.last_mut() {
            Some(last) if last.0 + last.1 as i64 == off => last.1 += len,
            _ => out.push((off, len)),
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::types::{elem, ArrayOrder, DatatypeExt};

    #[test]
    fn envelope_reports_combiners() {
        let v = Datatype::vector(4, 2, 8, &elem::int());
        assert!(matches!(
            envelope(&v),
            Envelope::Hvector {
                count: 4,
                blocklen: 2,
                ..
            }
        ));
        let i = Datatype::indexed(&[1, 2], &[0, 5], &elem::double()).unwrap();
        assert!(matches!(envelope(&i), Envelope::Hindexed { nblocks: 2 }));
        assert!(matches!(
            envelope(&elem::float()),
            Envelope::Named { name: "MPI_FLOAT" }
        ));
    }

    #[test]
    fn dump_renders_nesting() {
        let inner = Datatype::vector(4, 2, 8, &elem::double());
        let outer = Datatype::hvector(3, 1, 4096, &inner);
        let s = dump(&outer);
        assert!(s.contains("hvector(count=3"), "{s}");
        assert!(s.contains("hvector(count=4"), "{s}");
        assert!(s.contains("MPI_DOUBLE"), "{s}");
        // nesting depth reflected in indentation
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn dump_struct_fields() {
        let st = Datatype::struct_(&[2, 1], &[0, 64], &[elem::int(), elem::double()]).unwrap();
        let s = dump(&st);
        assert!(s.contains("struct(fields=2)"));
        assert!(s.contains("field @0 x2:"));
        assert!(s.contains("field @64 x1:"));
    }

    #[test]
    fn typemap_equality_across_constructors() {
        // The same layout built three ways.
        let a = Datatype::vector(4, 2, 4, &elem::int());
        let b = Datatype::indexed_block(2, &[0, 4, 8, 12], &elem::int()).unwrap();
        let c = Datatype::indexed(&[2, 2, 2, 2], &[0, 4, 8, 12], &elem::int()).unwrap();
        assert!(typemap_equal(&a, &b));
        assert!(typemap_equal(&b, &c));
        let different = Datatype::vector(4, 2, 5, &elem::int());
        assert!(!typemap_equal(&a, &different));
    }

    #[test]
    fn normalization_is_typemap_equal() {
        let sa =
            Datatype::subarray(&[8, 8], &[2, 4], &[1, 2], ArrayOrder::C, &elem::double()).unwrap();
        assert!(typemap_equal(&sa, &normalize(&sa)));
    }
}
