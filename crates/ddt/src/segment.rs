//! Resumable partial processing of a packed stream against a dataloop —
//! the equivalent of the MPITypes *segment*.
//!
//! A [`Segment`] tracks a position in the packed byte stream of a
//! committed datatype. [`Segment::process_range`] implements the exact
//! MPITypes contract the paper relies on (Sec. 3.2.4):
//!
//! * if `first` is **ahead** of the current position, a *catch-up* phase
//!   advances the state without emitting (we count the skipped blocks —
//!   the dominant cost of the HPU-local strategy);
//! * if `first` is **behind**, the segment is *reset* to its initial state
//!   and caught up from there (the out-of-order-arrival penalty);
//! * the `[first, last)` range is then processed, emitting every
//!   contiguous region to the sink.
//!
//! Cloning a `Segment` is cheap (the dataloop is shared via `Arc`); deep
//! snapshots for the checkpointing strategies are in [`crate::checkpoint`].

use std::sync::Arc;

use crate::dataloop::{Body, Dataloop};
use crate::error::{DdtError, Result};
use crate::sink::{BlockSink, NullSink};

/// Processing statistics accumulated by a segment; the offload cost model
/// converts these into simulated cycles.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SegStats {
    /// Contiguous regions emitted to sinks (→ DMA writes on the NIC).
    pub blocks_emitted: u64,
    /// Bytes emitted.
    pub bytes_emitted: u64,
    /// Blocks traversed during catch-up phases (no emission).
    pub catchup_blocks: u64,
    /// Bytes traversed during catch-up phases.
    pub catchup_bytes: u64,
    /// Number of resets (out-of-order packets for HPU-local).
    pub resets: u64,
}

impl SegStats {
    /// Merge another stats record into this one.
    pub fn merge(&mut self, o: &SegStats) {
        self.blocks_emitted += o.blocks_emitted;
        self.bytes_emitted += o.bytes_emitted;
        self.catchup_blocks += o.catchup_blocks;
        self.catchup_bytes += o.catchup_bytes;
        self.resets += o.resets;
    }
}

/// Resumable processing state over a compiled dataloop.
#[derive(Debug, Clone)]
pub struct Segment {
    root: Arc<Dataloop>,
    /// Path of block indices from the root to the current leaf. Empty when
    /// at position 0 (not yet descended) or at end of stream.
    frames: Vec<u64>,
    /// Bytes already consumed of the current leaf.
    leaf_pos: u64,
    /// Absolute packed-stream position.
    stream_pos: u64,
    /// Accumulated statistics.
    pub stats: SegStats,
}

impl Segment {
    /// Create a segment positioned at stream offset 0.
    pub fn new(root: Arc<Dataloop>) -> Self {
        Segment {
            root,
            frames: Vec::new(),
            leaf_pos: 0,
            stream_pos: 0,
            stats: SegStats::default(),
        }
    }

    /// Total packed size of the described data.
    pub fn total_size(&self) -> u64 {
        self.root.size
    }

    /// Current stream position.
    pub fn position(&self) -> u64 {
        self.stream_pos
    }

    /// The underlying dataloop.
    pub fn dataloop(&self) -> &Arc<Dataloop> {
        &self.root
    }

    /// Whether the whole stream has been consumed.
    pub fn finished(&self) -> bool {
        self.stream_pos >= self.root.size
    }

    /// Reset to the initial state (position 0). Statistics are kept.
    pub fn reset(&mut self) {
        self.frames.clear();
        self.leaf_pos = 0;
        self.stream_pos = 0;
    }

    /// Bytes a serialized snapshot of this state occupies (frame stack +
    /// header); used for NIC-memory accounting alongside the paper's
    /// 612 B checkpoint constant.
    pub fn state_bytes(&self) -> u64 {
        64 + 8 * self.frames.len() as u64
    }

    /// Advance up to `budget` bytes from the current position, emitting
    /// every contiguous region to `sink`. Returns bytes actually advanced
    /// (less than `budget` only at end of stream).
    pub fn advance(&mut self, budget: u64, sink: &mut dyn BlockSink) -> u64 {
        let total = self.root.size;
        if budget == 0 || self.stream_pos >= total {
            return 0;
        }
        // Build the cursor stack (&node per level) and the accumulated
        // buffer origin from the frame path; kept incrementally in sync
        // with `frames` for the duration of this call.
        let root = Arc::clone(&self.root);
        let mut stack: Vec<&Dataloop> = Vec::with_capacity(root.depth as usize + 1);
        stack.push(&root);
        let mut origin: i64 = 0;
        for &idx in &self.frames {
            let node = *stack.last().expect("stack nonempty");
            origin += node.block_offset(idx);
            stack.push(node.block_child(idx));
        }
        let mut remaining = budget;
        let mut advanced = 0u64;
        'outer: while remaining > 0 && self.stream_pos < total {
            // Descend to a leaf, extending the path with zeros.
            loop {
                let node = *stack.last().expect("stack nonempty");
                if matches!(node.body, Body::Leaf { .. }) {
                    break;
                }
                self.frames.push(0);
                origin += node.block_offset(0);
                stack.push(node.block_child(0));
            }
            let Body::Leaf { bytes, offset } = stack.last().expect("leaf").body else {
                unreachable!()
            };
            debug_assert!(self.leaf_pos < bytes || bytes == 0);
            // Strided fast path: whole uniform leaves under a `Count`
            // parent (the compiled form of vector/contiguous loops, i.e.
            // the overwhelmingly common leaf parent) are emitted in one
            // tight loop — offset arithmetic only, no per-block frame
            // push/pop or dispatch through the loop nest. The emitted
            // `sink.block` sequence is identical to the generic walk.
            if self.leaf_pos == 0 && bytes > 0 && remaining >= 2 * bytes && stack.len() >= 2 {
                if let Body::Count { count, step, .. } = stack[stack.len() - 2].body {
                    let idx = *self.frames.last().expect("frames nonempty");
                    let nfull = (remaining / bytes).min(count - idx);
                    if nfull >= 2 {
                        sink.strided(origin + offset, bytes, self.stream_pos, nfull, step);
                        self.stream_pos += nfull * bytes;
                        self.stats.blocks_emitted += nfull;
                        self.stats.bytes_emitted += nfull * bytes;
                        advanced += nfull * bytes;
                        remaining -= nfull * bytes;
                        // Land on the last emitted block with its leaf
                        // fully consumed; the generic pop-and-increment
                        // below repositions for whatever comes next.
                        let last = idx + nfull - 1;
                        origin += (last - idx) as i64 * step;
                        *self.frames.last_mut().expect("frames nonempty") = last;
                        self.leaf_pos = bytes;
                    }
                }
            }
            let chunk = remaining.min(bytes - self.leaf_pos);
            if chunk > 0 {
                sink.block(
                    origin + offset + self.leaf_pos as i64,
                    chunk,
                    self.stream_pos,
                );
                self.stats.blocks_emitted += 1;
                self.stats.bytes_emitted += chunk;
            }
            self.leaf_pos += chunk;
            self.stream_pos += chunk;
            advanced += chunk;
            remaining -= chunk;
            if self.leaf_pos == bytes {
                self.leaf_pos = 0;
                // Pop-and-increment to the next block.
                loop {
                    let Some(idx) = self.frames.pop() else {
                        // Entire stream consumed.
                        debug_assert_eq!(self.stream_pos, total);
                        break 'outer;
                    };
                    stack.pop();
                    let parent = *stack.last().expect("stack nonempty");
                    origin -= parent.block_offset(idx);
                    if idx + 1 < parent.nblocks() {
                        self.frames.push(idx + 1);
                        origin += parent.block_offset(idx + 1);
                        stack.push(parent.block_child(idx + 1));
                        break;
                    }
                }
            }
        }
        advanced
    }

    /// Process packed-stream range `[first, last)`, emitting blocks to
    /// `sink`, with MPITypes catch-up / reset semantics relative to the
    /// current position.
    pub fn process_range(&mut self, first: u64, last: u64, sink: &mut dyn BlockSink) -> Result<()> {
        let total = self.root.size;
        if last > total {
            return Err(DdtError::StreamOutOfBounds {
                pos: last,
                size: total,
            });
        }
        if first > last {
            return Err(DdtError::StreamOutOfBounds {
                pos: first,
                size: last,
            });
        }
        if first < self.stream_pos {
            self.reset();
            self.stats.resets += 1;
        }
        if first > self.stream_pos {
            // Catch-up: advance without emitting, tracking its cost.
            let before = self.stats;
            let mut null = NullSink;
            let skip = first - self.stream_pos;
            let done = self.advance(skip, &mut null);
            debug_assert_eq!(done, skip);
            // Re-classify the advance as catch-up.
            self.stats.catchup_blocks += self.stats.blocks_emitted - before.blocks_emitted;
            self.stats.catchup_bytes += self.stats.bytes_emitted - before.bytes_emitted;
            self.stats.blocks_emitted = before.blocks_emitted;
            self.stats.bytes_emitted = before.bytes_emitted;
        }
        self.advance(last - first, sink);
        Ok(())
    }

    /// Position directly at `pos` in O(depth · log n), without walking the
    /// intervening blocks. This is *not* something the streaming NIC
    /// handlers can do (they pay linear catch-up); it is used to create
    /// checkpoints cheaply on the host and as a test oracle.
    pub fn seek(&mut self, pos: u64) -> Result<()> {
        let total = self.root.size;
        if pos > total {
            return Err(DdtError::StreamOutOfBounds { pos, size: total });
        }
        self.frames.clear();
        self.leaf_pos = 0;
        self.stream_pos = pos;
        if pos == total {
            return Ok(()); // finished state: empty frames
        }
        let mut node: Arc<Dataloop> = Arc::clone(&self.root);
        let mut within = pos;
        loop {
            match &node.body {
                Body::Leaf { bytes, .. } => {
                    debug_assert!(within < *bytes);
                    self.leaf_pos = within;
                    return Ok(());
                }
                _ => {
                    let (idx, sub) = node.find_block(within);
                    self.frames.push(idx);
                    let child = Arc::clone(node.block_child(idx));
                    node = child;
                    within = sub;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataloop::compile;
    use crate::sink::{CountSink, VecSink};
    use crate::typemap;
    use crate::types::{elem, ArrayOrder, Datatype, DatatypeExt};

    fn merged_reference(dt: &Datatype, count: u32) -> Vec<(i64, u64)> {
        // merge adjacent typemap blocks (stream-contiguous AND buffer-contiguous)
        let raw = typemap::blocks(dt, count);
        let mut out: Vec<(i64, u64)> = Vec::new();
        for (off, len) in raw {
            if len == 0 {
                continue;
            }
            if let Some(last) = out.last_mut() {
                if last.0 + last.1 as i64 == off {
                    last.1 += len;
                    continue;
                }
            }
            out.push((off, len));
        }
        out
    }

    fn check_full_walk(dt: &Datatype, count: u32) {
        let dl = compile(dt, count);
        let mut seg = Segment::new(dl);
        let mut sink = VecSink::default();
        let n = seg.advance(u64::MAX, &mut sink);
        assert_eq!(n, dt.size * count as u64);
        assert!(seg.finished());
        let reference = merged_reference(dt, count);
        // The segment does not merge across loop-iteration boundaries
        // (each leaf emission is one DMA write); re-merge for comparison.
        let mut got: Vec<(i64, u64)> = Vec::new();
        for &(o, l, _) in &sink.blocks {
            match got.last_mut() {
                Some(last) if last.0 + last.1 as i64 == o => last.1 += l,
                _ => got.push((o, l)),
            }
        }
        assert_eq!(
            got,
            reference,
            "dataloop walk disagrees with typemap for {}",
            dt.signature()
        );
    }

    #[test]
    fn full_walk_matches_typemap_various() {
        check_full_walk(&Datatype::vector(7, 3, 5, &elem::int()), 1);
        check_full_walk(&Datatype::vector(7, 3, 5, &elem::int()), 3);
        check_full_walk(&Datatype::contiguous(13, &elem::double()), 2);
        check_full_walk(
            &Datatype::indexed(&[2, 1, 4], &[5, 0, 9], &elem::float()).unwrap(),
            2,
        );
        check_full_walk(
            &Datatype::indexed_block(3, &[0, 7, 3], &elem::double()).unwrap(),
            1,
        );
        check_full_walk(
            &Datatype::subarray(
                &[6, 5, 4],
                &[3, 2, 2],
                &[2, 1, 1],
                ArrayOrder::C,
                &elem::int(),
            )
            .unwrap(),
            2,
        );
        let inner = Datatype::vector(4, 2, 3, &elem::float());
        check_full_walk(&Datatype::vector(3, 1, 10, &inner), 1);
        let s = Datatype::struct_(
            &[2, 3],
            &[0, 64],
            &[elem::double(), Datatype::vector(2, 1, 2, &elem::int())],
        )
        .unwrap();
        check_full_walk(&s, 2);
    }

    #[test]
    fn chunked_advance_equals_full() {
        let dt = Datatype::vector(16, 3, 7, &elem::int());
        let dl = compile(&dt, 2);
        let mut full = VecSink::default();
        Segment::new(dl.clone()).advance(u64::MAX, &mut full);

        for chunk in [1u64, 3, 16, 64, 1000] {
            let mut seg = Segment::new(dl.clone());
            let mut sink = VecSink::default();
            while !seg.finished() {
                seg.advance(chunk, &mut sink);
            }
            // Re-merge split blocks and compare coverage
            let rejoin = |blocks: &[(i64, u64, u64)]| {
                let mut v: Vec<(i64, u64)> = Vec::new();
                for &(o, l, _) in blocks {
                    if let Some(last) = v.last_mut() {
                        if last.0 + last.1 as i64 == o {
                            last.1 += l;
                            continue;
                        }
                    }
                    v.push((o, l));
                }
                v
            };
            assert_eq!(rejoin(&sink.blocks), rejoin(&full.blocks), "chunk={chunk}");
        }
    }

    #[test]
    fn process_range_catchup_counts_blocks() {
        let dt = Datatype::vector(64, 1, 2, &elem::int()); // 64 4-byte blocks
        let dl = compile(&dt, 1);
        let mut seg = Segment::new(dl);
        let mut sink = CountSink::default();
        // Skip the first half (32 blocks), process the rest.
        seg.process_range(128, 256, &mut sink).unwrap();
        assert_eq!(sink.blocks, 32);
        assert_eq!(seg.stats.catchup_blocks, 32);
        assert_eq!(seg.stats.catchup_bytes, 128);
        assert_eq!(seg.stats.resets, 0);
    }

    #[test]
    fn process_range_backwards_resets() {
        let dt = Datatype::vector(10, 1, 2, &elem::int());
        let dl = compile(&dt, 1);
        let mut seg = Segment::new(dl);
        let mut null = CountSink::default();
        seg.process_range(0, 24, &mut null).unwrap();
        assert_eq!(seg.position(), 24);
        seg.process_range(8, 16, &mut null).unwrap();
        assert_eq!(seg.stats.resets, 1);
        assert_eq!(seg.position(), 16);
    }

    #[test]
    fn process_range_out_of_bounds() {
        let dt = Datatype::contiguous(4, &elem::int());
        let mut seg = Segment::new(compile(&dt, 1));
        let mut s = CountSink::default();
        assert!(seg.process_range(0, 17, &mut s).is_err());
        assert!(seg.process_range(9, 8, &mut s).is_err());
    }

    #[test]
    fn seek_agrees_with_linear_advance() {
        let inner = Datatype::indexed(&[1, 3, 2], &[0, 4, 12], &elem::float()).unwrap();
        let dt = Datatype::vector(9, 2, 40, &inner);
        let dl = compile(&dt, 3);
        let total = dl.size;
        for pos in [0u64, 1, 7, 24, total / 3, total / 2, total - 1, total] {
            let mut a = Segment::new(dl.clone());
            a.seek(pos).unwrap();
            let mut b = Segment::new(dl.clone());
            b.advance(pos, &mut NullSink);
            let mut sa = VecSink::default();
            let mut sb = VecSink::default();
            a.advance(64, &mut sa);
            b.advance(64, &mut sb);
            assert_eq!(sa.blocks, sb.blocks, "divergence after pos {pos}");
        }
    }

    #[test]
    fn zero_size_segment_finishes_immediately() {
        let dt = Datatype::contiguous(0, &elem::int());
        let mut seg = Segment::new(compile(&dt, 5));
        assert!(seg.finished());
        assert_eq!(seg.advance(100, &mut NullSink), 0);
    }

    #[test]
    fn clone_preserves_position_independence() {
        let dt = Datatype::vector(8, 1, 2, &elem::double());
        let mut a = Segment::new(compile(&dt, 1));
        a.advance(24, &mut NullSink);
        let mut b = a.clone();
        b.advance(8, &mut NullSink);
        assert_eq!(a.position(), 24);
        assert_eq!(b.position(), 32);
    }
}
