//! Datatype normalization and shape classification.
//!
//! Träff-style normalization rewrites complex nested datatypes into
//! simpler equivalent ones (same typemap). The paper notes (Sec. 3.2.3)
//! that normalization can make nested types compatible with the
//! *specialized* NIC handlers; this module provides both the rewrite and
//! the classification the offload layer uses to pick a handler.

use crate::types::{Datatype, DatatypeExt, DatatypeKind};

/// The handler-relevant shape of a (normalized) datatype, for one copy.
/// `base_offset` fields account for placed types (e.g. subarrays whose
/// region does not start at offset 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// Single contiguous run — no datatype processing needed at all.
    Contiguous {
        /// Offset of the run.
        base_offset: i64,
        /// Run length in bytes.
        bytes: u64,
    },
    /// Uniform blocks on a fixed stride: the paper's `spin_vec_t`.
    Vector {
        /// Number of blocks.
        count: u64,
        /// Block size in bytes.
        block_bytes: u64,
        /// Stride between block starts in bytes.
        stride_bytes: i64,
        /// Offset of the first block.
        base_offset: i64,
    },
    /// Two-level vector (vector of vectors, e.g. MILC) — still O(1) NIC
    /// state for a specialized handler.
    Vector2 {
        /// Outer block count.
        outer_count: u64,
        /// Outer stride in bytes.
        outer_stride: i64,
        /// Inner block count (per outer block).
        inner_count: u64,
        /// Inner block size in bytes.
        block_bytes: u64,
        /// Inner stride in bytes.
        inner_stride: i64,
        /// Offset of the first block.
        base_offset: i64,
    },
    /// Uniform blocks at arbitrary offsets (offset list on the NIC).
    IndexedBlock {
        /// Number of blocks.
        count: u64,
        /// Block size in bytes.
        block_bytes: u64,
    },
    /// Variable-size blocks at arbitrary offsets (offset+size lists on
    /// the NIC; also covers single-level structs).
    Indexed {
        /// Number of blocks.
        count: u64,
    },
    /// Anything else — only the general (MPITypes) handlers apply
    /// without linearizing the type.
    General,
}

impl Shape {
    /// Whether an O(1)-state or O(blocks)-list specialized handler exists.
    pub fn has_specialized_handler(&self) -> bool {
        !matches!(self, Shape::General)
    }

    /// Whether the specialized handler needs only O(1) NIC state.
    pub fn constant_state(&self) -> bool {
        matches!(
            self,
            Shape::Contiguous { .. } | Shape::Vector { .. } | Shape::Vector2 { .. }
        )
    }
}

/// Normalize a datatype: collapse trivial wrappers and rewrite
/// vector/indexed nests whose base is contiguous into flat forms. The
/// result has an identical typemap (asserted by tests); the extent may
/// shrink to the true extent for rewritten forms (callers relying on
/// repetition semantics should keep the original type for `count > 1`).
pub fn normalize(dt: &Datatype) -> Datatype {
    match &dt.kind {
        DatatypeKind::Contiguous { count } => {
            let c = normalize(dt.child.as_ref().expect("contig child"));
            if *count == 1 {
                return c;
            }
            if let DatatypeKind::Contiguous { count: inner } = &c.kind {
                let cc = c.child.as_ref().expect("contig child").clone();
                return Datatype::contiguous(count * inner, &cc);
            }
            Datatype::contiguous(*count, &c)
        }
        DatatypeKind::Vector {
            count,
            blocklen,
            stride_bytes,
        } => {
            let c = normalize(dt.child.as_ref().expect("vector child"));
            if *count == 1 {
                return normalize(&Datatype::contiguous(*blocklen, &c));
            }
            // vector over a full-extent contiguous child flattens the
            // child into the block length (expressed in bytes).
            if let Some(run) = c.contig_run {
                if run as i64 == c.extent()
                    && c.true_lb == 0
                    && *blocklen as u64 * run <= u32::MAX as u64
                {
                    return Datatype::hvector(
                        *count,
                        (*blocklen as u64 * run) as u32,
                        *stride_bytes,
                        &crate::types::elem::byte(),
                    );
                }
            }
            Datatype::hvector(*count, *blocklen, *stride_bytes, &c)
        }
        DatatypeKind::IndexedBlock {
            blocklen,
            displs_bytes,
        } => {
            let c = normalize(dt.child.as_ref().expect("ib child"));
            // Constant stride starting at 0 → vector.
            if displs_bytes.len() >= 2 {
                let stride = displs_bytes[1] - displs_bytes[0];
                let uniform = displs_bytes.windows(2).all(|w| w[1] - w[0] == stride);
                if uniform && displs_bytes[0] == 0 {
                    return normalize(&Datatype::hvector(
                        displs_bytes.len() as u32,
                        *blocklen,
                        stride,
                        &c,
                    ));
                }
            }
            Datatype::hindexed_block(*blocklen, displs_bytes, &c).expect("valid indexed_block")
        }
        DatatypeKind::Indexed { blocks } => {
            let c = normalize(dt.child.as_ref().expect("indexed child"));
            // All block lengths equal → indexed_block.
            if let Some(&(len0, _)) = blocks.first() {
                if blocks.iter().all(|&(l, _)| l == len0) && len0 > 0 {
                    let displs: Vec<i64> = blocks.iter().map(|&(_, d)| d).collect();
                    return normalize(&Datatype::hindexed_block(len0, &displs, &c).expect("valid"));
                }
            }
            let lens: Vec<u32> = blocks.iter().map(|&(l, _)| l).collect();
            let displs: Vec<i64> = blocks.iter().map(|&(_, d)| d).collect();
            Datatype::hindexed(&lens, &displs, &c).expect("valid indexed")
        }
        DatatypeKind::Struct { fields } => {
            if fields.len() == 1 {
                let f = &fields[0];
                let inner = normalize(&Datatype::contiguous(f.count, &f.ty));
                if f.displ == 0 {
                    return inner;
                }
                return Datatype::hindexed_block(1, &[f.displ], &inner).expect("valid");
            }
            dt.clone()
        }
        DatatypeKind::Resized { .. } => {
            // Bounds only matter for repetition; peel for shape analysis
            // but keep the resize so extents stay intact.
            let c = normalize(dt.child.as_ref().expect("resized child"));
            let (lb, extent) = match dt.kind {
                DatatypeKind::Resized { lb, extent } => (lb, extent),
                _ => unreachable!(),
            };
            Datatype::resized(lb, extent, &c)
        }
        DatatypeKind::Elementary(_) => dt.clone(),
    }
}

/// Classify a datatype into the shape the offload layer dispatches on.
///
/// Works on the normalized tree; peels `Resized` wrappers and
/// single-displacement placements, accumulating a base offset.
pub fn classify(dt: &Datatype) -> Shape {
    let n = normalize(dt);
    classify_peeled(&n, 0)
}

fn classify_peeled(dt: &Datatype, base: i64) -> Shape {
    if let Some(run) = dt.contig_run {
        return Shape::Contiguous {
            base_offset: base + dt.true_lb,
            bytes: run,
        };
    }
    match &dt.kind {
        DatatypeKind::Resized { .. } => {
            classify_peeled(dt.child.as_ref().expect("resized child"), base)
        }
        DatatypeKind::IndexedBlock {
            blocklen,
            displs_bytes,
        } if displs_bytes.len() == 1 => {
            // A placement wrapper: shift and classify the inner block.
            let c = dt.child.as_ref().expect("ib child");
            let inner = Datatype::contiguous(*blocklen, c);
            classify_peeled(&normalize(&inner), base + displs_bytes[0])
        }
        DatatypeKind::Vector {
            count,
            blocklen,
            stride_bytes,
        } => {
            let c = dt.child.as_ref().expect("vector child");
            if full_run(c) {
                return Shape::Vector {
                    count: *count as u64,
                    block_bytes: *blocklen as u64 * c.size,
                    stride_bytes: *stride_bytes,
                    base_offset: base + c.true_lb,
                };
            }
            // vector over vector (blocklen must be 1 for a clean 2-level
            // pattern).
            if *blocklen == 1 {
                if let Shape::Vector {
                    count: ic,
                    block_bytes,
                    stride_bytes: istride,
                    base_offset,
                } = classify_peeled(c, base)
                {
                    return Shape::Vector2 {
                        outer_count: *count as u64,
                        outer_stride: *stride_bytes,
                        inner_count: ic,
                        block_bytes,
                        inner_stride: istride,
                        base_offset,
                    };
                }
            }
            Shape::General
        }
        DatatypeKind::IndexedBlock {
            blocklen,
            displs_bytes,
        } => {
            let c = dt.child.as_ref().expect("ib child");
            if full_run(c) {
                Shape::IndexedBlock {
                    count: displs_bytes.len() as u64,
                    block_bytes: *blocklen as u64 * c.size,
                }
            } else {
                Shape::General
            }
        }
        DatatypeKind::Indexed { blocks } => {
            let c = dt.child.as_ref().expect("indexed child");
            if full_run(c) {
                Shape::Indexed {
                    count: blocks.len() as u64,
                }
            } else {
                Shape::General
            }
        }
        DatatypeKind::Struct { fields } => {
            // Single-level struct (all fields contiguous) → treated as an
            // indexed list of (offset, len) pairs.
            if fields.iter().all(|f| full_run(&f.ty)) {
                Shape::Indexed {
                    count: fields.len() as u64,
                }
            } else {
                Shape::General
            }
        }
        _ => Shape::General,
    }
}

fn full_run(dt: &Datatype) -> bool {
    dt.contig_run
        .map(|r| r as i64 == dt.extent())
        .unwrap_or(false)
        && dt.true_lb == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typemap;
    use crate::types::{elem, ArrayOrder};

    fn merged(dt: &Datatype) -> Vec<(i64, u64)> {
        let mut out: Vec<(i64, u64)> = Vec::new();
        for (off, len) in typemap::blocks(dt, 1) {
            match out.last_mut() {
                Some(last) if last.0 + last.1 as i64 == off => last.1 += len,
                _ => out.push((off, len)),
            }
        }
        out
    }

    fn same_typemap(a: &Datatype, b: &Datatype) {
        // Normalization may change block granularity (ints → bytes); the
        // merged maps must be identical.
        assert_eq!(merged(a), merged(b));
        assert_eq!(a.size, b.size);
    }

    #[test]
    fn contig_of_contig_collapses() {
        let t = Datatype::contiguous(4, &Datatype::contiguous(8, &elem::int()));
        let n = normalize(&t);
        same_typemap(&t, &n);
        assert!(n.is_contiguous());
    }

    #[test]
    fn vector_of_contig_flattens() {
        let t = Datatype::vector(8, 2, 6, &Datatype::contiguous(3, &elem::int()));
        let n = normalize(&t);
        same_typemap(&t, &n);
        assert!(matches!(
            classify(&t),
            Shape::Vector {
                count: 8,
                block_bytes: 24,
                ..
            }
        ));
    }

    #[test]
    fn uniform_indexed_block_becomes_vector() {
        let t = Datatype::indexed_block(2, &[0, 5, 10, 15], &elem::int()).unwrap();
        let n = normalize(&t);
        same_typemap(&t, &n);
        assert!(matches!(
            classify(&t),
            Shape::Vector {
                count: 4,
                block_bytes: 8,
                ..
            }
        ));
    }

    #[test]
    fn equal_length_indexed_becomes_indexed_block() {
        let t = Datatype::indexed(&[3, 3, 3], &[0, 7, 20], &elem::int()).unwrap();
        same_typemap(&t, &normalize(&t));
        assert!(matches!(
            classify(&t),
            Shape::IndexedBlock {
                count: 3,
                block_bytes: 12
            }
        ));
    }

    #[test]
    fn irregular_indexed_stays_indexed() {
        let t = Datatype::indexed(&[1, 3, 2], &[0, 7, 20], &elem::int()).unwrap();
        assert!(matches!(classify(&t), Shape::Indexed { count: 3 }));
    }

    #[test]
    fn milc_style_vector_of_vector_is_vector2() {
        let inner = Datatype::vector(4, 2, 8, &elem::double());
        let t = Datatype::vector(5, 1, 100, &inner);
        match classify(&t) {
            Shape::Vector2 {
                outer_count: 5,
                inner_count: 4,
                block_bytes: 16,
                ..
            } => {}
            other => panic!("expected Vector2, got {other:?}"),
        }
    }

    #[test]
    fn deep_nesting_is_general() {
        let l1 = Datatype::vector(4, 1, 3, &elem::int());
        let l2 = Datatype::vector(5, 2, 20, &l1);
        let l3 = Datatype::vector(2, 1, 300, &l2);
        assert_eq!(classify(&l3), Shape::General);
    }

    #[test]
    fn full_subarray_is_contiguous_shape() {
        let t = Datatype::subarray(&[4, 4], &[4, 4], &[0, 0], ArrayOrder::C, &elem::int()).unwrap();
        assert!(matches!(classify(&t), Shape::Contiguous { .. }));
    }

    #[test]
    fn subarray_rows_classify_as_vector_with_base() {
        let t2 =
            Datatype::subarray(&[8, 16], &[3, 8], &[2, 4], ArrayOrder::C, &elem::double()).unwrap();
        match classify(&t2) {
            Shape::Vector {
                count: 3,
                block_bytes: 64,
                stride_bytes,
                base_offset,
            } => {
                assert_eq!(stride_bytes, 128);
                assert_eq!(base_offset, 2 * 128 + 4 * 8);
            }
            other => panic!("expected vector, got {other:?}"),
        }
    }

    #[test]
    fn single_level_struct_is_indexed_shape() {
        let t = Datatype::struct_(&[2, 4], &[0, 32], &[elem::double(), elem::int()]).unwrap();
        assert!(matches!(classify(&t), Shape::Indexed { count: 2 }));
    }

    #[test]
    fn struct_of_subarray_is_general() {
        let sa =
            Datatype::subarray(&[8, 8], &[2, 3], &[1, 1], ArrayOrder::C, &elem::double()).unwrap();
        let t = Datatype::struct_(&[1, 1], &[0, 4096], &[sa.clone(), sa]).unwrap();
        assert_eq!(classify(&t), Shape::General);
    }

    #[test]
    fn single_field_struct_unwraps() {
        let t = Datatype::struct_(&[4], &[0], &[elem::double()]).unwrap();
        let n = normalize(&t);
        same_typemap(&t, &n);
        assert!(n.is_contiguous());
    }

    #[test]
    fn normalization_preserves_typemap_on_nests() {
        let inner = Datatype::indexed(&[1, 2], &[0, 3], &elem::float()).unwrap();
        let t = Datatype::vector(6, 2, 12, &inner);
        same_typemap(&t, &normalize(&t));
    }
}
