//! Leaf copy kernels: the byte-movement inner loops behind pack/unpack
//! and the simulated DMA scatter.
//!
//! Non-contiguous datatypes decompose into runs of equal-sized leaf
//! blocks at fixed strides (the `Count { child: Leaf }` shape every
//! vector/hvector/darray dimension compiles to). A generic
//! `memcpy`-per-block loop pays call + size-dispatch overhead on every
//! block, which dominates once blocks shrink to a few elements. The
//! kernels here dispatch on the block size **once** and then run a
//! monomorphic loop whose copy length is a compile-time constant, so
//! word-multiple blocks (4/8/16/32 bytes — the aligned cases for int,
//! double, and small element pairs) lower to plain register moves with
//! no `memcpy` call at all. Everything is safe Rust: the constant-size
//! slice copies carry one hoistable bounds check per block.

/// Run a strided block loop with the copy length dispatched to a
/// constant. `$n` blocks; `$d`/`$s` are the mutable destination/source
/// cursors, stepped by `$dstep`/`$sstep` after each block.
macro_rules! strided_loop {
    ($dst:ident, $src:ident, $d:ident, $s:ident, $dstep:ident, $sstep:ident, $n:ident, $len:expr) => {{
        for _ in 0..$n {
            let (di, si) = ($d as usize, $s as usize);
            $dst[di..di + $len].copy_from_slice(&$src[si..si + $len]);
            $d += $dstep;
            $s += $sstep;
        }
    }};
}

/// Copy `n` blocks of `len` bytes between `src` and `dst`, with the
/// destination cursor starting at `dst_base` and advancing by `dst_step`
/// per block, and the source cursor starting at `src_base` and advancing
/// by `src_step`. Steps may be negative (descending typemaps); every
/// block must land inside its slice or the copy panics, same as the
/// slice-indexing reference loop it replaces.
///
/// `unpack` is `copy_strided(dst, off, step, src, pos, len, ...)`;
/// `pack` is the same call with the strides swapped onto the source.
///
/// The argument list is two (base, step) cursor specs plus the block
/// geometry — a struct would only rename the positions.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn copy_strided(
    dst: &mut [u8],
    dst_base: i64,
    dst_step: i64,
    src: &[u8],
    src_base: i64,
    src_step: i64,
    len: u64,
    n: u64,
) {
    let (mut d, mut s) = (dst_base as isize, src_base as isize);
    let (dstep, sstep) = (dst_step as isize, src_step as isize);
    let len = len as usize;
    match len {
        4 => strided_loop!(dst, src, d, s, dstep, sstep, n, 4),
        8 => strided_loop!(dst, src, d, s, dstep, sstep, n, 8),
        16 => strided_loop!(dst, src, d, s, dstep, sstep, n, 16),
        32 => strided_loop!(dst, src, d, s, dstep, sstep, n, 32),
        _ => strided_loop!(dst, src, d, s, dstep, sstep, n, len),
    }
}

/// Copy a single leaf block. Word-multiple sizes take the constant-size
/// path (single load/store pairs); anything else falls back to `memcpy`.
#[inline]
pub fn copy_block(dst: &mut [u8], dst_off: usize, src: &[u8], src_off: usize, len: usize) {
    match len {
        1 => dst[dst_off] = src[src_off],
        2 => dst[dst_off..dst_off + 2].copy_from_slice(&src[src_off..src_off + 2]),
        4 => dst[dst_off..dst_off + 4].copy_from_slice(&src[src_off..src_off + 4]),
        8 => dst[dst_off..dst_off + 8].copy_from_slice(&src[src_off..src_off + 8]),
        16 => dst[dst_off..dst_off + 16].copy_from_slice(&src[src_off..src_off + 16]),
        32 => dst[dst_off..dst_off + 32].copy_from_slice(&src[src_off..src_off + 32]),
        64 => dst[dst_off..dst_off + 64].copy_from_slice(&src[src_off..src_off + 64]),
        128 => dst[dst_off..dst_off + 128].copy_from_slice(&src[src_off..src_off + 128]),
        _ => dst[dst_off..dst_off + len].copy_from_slice(&src[src_off..src_off + len]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn reference(
        dst: &mut [u8],
        dst_base: i64,
        dst_step: i64,
        src: &[u8],
        src_base: i64,
        src_step: i64,
        len: u64,
        n: u64,
    ) {
        for i in 0..n as i64 {
            let d = (dst_base + i * dst_step) as usize;
            let s = (src_base + i * src_step) as usize;
            let len = len as usize;
            dst[d..d + len].copy_from_slice(&src[s..s + len]);
        }
    }

    #[test]
    fn strided_matches_reference_all_sizes() {
        let src: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        for len in [1u64, 3, 4, 7, 8, 16, 24, 32, 40] {
            for step in [len as i64, len as i64 + 8, len as i64 + 13] {
                let n = 3000 / step as u64;
                let mut a = vec![0u8; 4096];
                let mut b = vec![0u8; 4096];
                copy_strided(&mut a, 5, step, &src, 0, len as i64, len, n);
                reference(&mut b, 5, step, &src, 0, len as i64, len, n);
                assert_eq!(a, b, "len={len} step={step}");
            }
        }
    }

    #[test]
    fn strided_negative_steps() {
        let src: Vec<u8> = (0..128u8).collect();
        let mut a = vec![0u8; 128];
        let mut b = vec![0u8; 128];
        // Descending destination, ascending source.
        copy_strided(&mut a, 112, -16, &src, 0, 8, 8, 8);
        reference(&mut b, 112, -16, &src, 0, 8, 8, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn copy_block_all_sizes() {
        let src: Vec<u8> = (0..64u8).collect();
        for len in [1usize, 2, 4, 5, 8, 16, 31] {
            let mut d = vec![0u8; 64];
            copy_block(&mut d, 3, &src, 7, len);
            assert_eq!(&d[3..3 + len], &src[7..7 + len]);
        }
    }

    #[test]
    #[should_panic]
    fn strided_out_of_bounds_panics() {
        let src = vec![0u8; 32];
        let mut dst = vec![0u8; 16];
        copy_strided(&mut dst, 0, 8, &src, 0, 8, 8, 4);
    }
}
