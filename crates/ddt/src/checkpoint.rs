//! Segment checkpoints — snapshots of datatype-processing state.
//!
//! The RO-CP and RW-CP offload strategies (paper Sec. 3.2.4) precompute,
//! on the host, snapshots of the MPITypes segment every Δr stream bytes
//! and copy them to NIC memory. A handler then starts from the closest
//! checkpoint at or before its packet's stream offset instead of
//! replaying the whole stream.
//!
//! [`CheckpointTable::build`] creates the table; the per-checkpoint NIC
//! footprint uses the paper's measured constant
//! [`CHECKPOINT_NIC_BYTES`] (612 B) for accounting, independent of our
//! (smaller) in-simulator representation.

use std::sync::Arc;

use crate::dataloop::Dataloop;
use crate::error::Result;
use crate::segment::Segment;

/// NIC-memory footprint of one checkpoint, as configured in the paper
/// ("C is the checkpoint size (612 B in our configuration)").
pub const CHECKPOINT_NIC_BYTES: u64 = 612;

/// A snapshot of segment state at a known stream offset.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Stream offset the snapshot corresponds to.
    pub offset: u64,
    /// The frozen segment state.
    pub segment: Segment,
}

impl Checkpoint {
    /// Snapshot the current state of `seg`.
    pub fn capture(seg: &Segment) -> Checkpoint {
        let mut frozen = seg.clone();
        // Checkpoints carry no history: statistics restart from zero so a
        // handler's cost attribution is its own.
        frozen.stats = Default::default();
        Checkpoint {
            offset: seg.position(),
            segment: frozen,
        }
    }

    /// Materialize a working segment from this checkpoint (the "local
    /// copy" a RO-CP handler makes before processing).
    pub fn materialize(&self) -> Segment {
        self.segment.clone()
    }
}

/// An ordered table of checkpoints at (approximately) uniform intervals.
#[derive(Debug, Clone)]
pub struct CheckpointTable {
    /// Checkpoint interval Δr in stream bytes.
    pub interval: u64,
    /// Checkpoints sorted by offset; `cps[0].offset == 0`.
    pub cps: Vec<Checkpoint>,
    /// Total stream size covered.
    pub total: u64,
}

impl CheckpointTable {
    /// Build a table for the given dataloop with checkpoint interval
    /// `interval` (Δr). The table always contains the initial state at
    /// offset 0 plus one checkpoint per full interval boundary below the
    /// total size. Host-side creation walks the stream once (the paper's
    /// "the datatype is processed on the host and every Δr bytes … a copy
    /// of the segment is made").
    pub fn build(dl: &Arc<Dataloop>, interval: u64) -> Result<CheckpointTable> {
        assert!(interval > 0, "checkpoint interval must be positive");
        let total = dl.size;
        let mut seg = Segment::new(Arc::clone(dl));
        let mut cps = Vec::with_capacity((total / interval) as usize + 1);
        cps.push(Checkpoint::capture(&seg));
        let mut at = interval;
        while at < total {
            seg.seek(at)?;
            cps.push(Checkpoint::capture(&seg));
            at += interval;
        }
        Ok(CheckpointTable {
            interval,
            cps,
            total,
        })
    }

    /// Number of checkpoints.
    pub fn len(&self) -> usize {
        self.cps.len()
    }

    /// Whether the table is empty (never true for a built table).
    pub fn is_empty(&self) -> bool {
        self.cps.is_empty()
    }

    /// NIC memory the table occupies, using the paper's per-checkpoint
    /// constant.
    pub fn nic_bytes(&self) -> u64 {
        self.cps.len() as u64 * CHECKPOINT_NIC_BYTES
    }

    /// Index of the closest checkpoint at or before stream offset `pos`.
    pub fn closest_index(&self, pos: u64) -> usize {
        let idx = (pos / self.interval) as usize;
        idx.min(self.cps.len() - 1)
    }

    /// The closest checkpoint at or before `pos`.
    pub fn closest(&self, pos: u64) -> &Checkpoint {
        &self.cps[self.closest_index(pos)]
    }

    /// Host-side cost accounting for creating the table: bytes that must
    /// be copied to the NIC (checkpoints + nothing else; the dataloop
    /// descriptor is accounted separately).
    pub fn creation_copy_bytes(&self) -> u64 {
        self.nic_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataloop::compile;
    use crate::sink::VecSink;
    use crate::types::{elem, Datatype, DatatypeExt};

    fn vec_dt() -> Arc<Dataloop> {
        compile(&Datatype::vector(100, 2, 5, &elem::int()), 1)
    }

    #[test]
    fn table_has_expected_count() {
        let dl = vec_dt(); // size = 100*8 = 800
        assert_eq!(dl.size, 800);
        let t = CheckpointTable::build(&dl, 128).unwrap();
        // offsets 0,128,...,768 -> 7 checkpoints
        assert_eq!(t.len(), 7);
        assert_eq!(t.cps[0].offset, 0);
        assert_eq!(t.cps[6].offset, 768);
        assert_eq!(t.nic_bytes(), 7 * CHECKPOINT_NIC_BYTES);
    }

    #[test]
    fn closest_picks_floor() {
        let dl = vec_dt();
        let t = CheckpointTable::build(&dl, 100).unwrap();
        assert_eq!(t.closest(0).offset, 0);
        assert_eq!(t.closest(99).offset, 0);
        assert_eq!(t.closest(100).offset, 100);
        assert_eq!(t.closest(799).offset, 700);
    }

    #[test]
    fn materialized_checkpoint_continues_correctly() {
        let dl = vec_dt();
        let t = CheckpointTable::build(&dl, 160).unwrap();
        // Process [320, 400) from checkpoint vs. from scratch.
        let cp = t.closest(320);
        assert_eq!(cp.offset, 320);
        let mut from_cp = cp.materialize();
        let mut a = VecSink::default();
        from_cp.process_range(320, 400, &mut a).unwrap();

        let mut fresh = Segment::new(dl);
        let mut b = VecSink::default();
        fresh.process_range(320, 400, &mut b).unwrap();
        assert_eq!(a.blocks, b.blocks);
        // Checkpoint start needs no catch-up.
        assert_eq!(from_cp.stats.catchup_bytes, 0);
        assert!(fresh.stats.catchup_bytes > 0);
    }

    #[test]
    fn interval_larger_than_stream_gives_one_checkpoint() {
        let dl = vec_dt();
        let t = CheckpointTable::build(&dl, 10_000).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.closest(799).offset, 0);
    }
}
