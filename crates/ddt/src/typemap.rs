//! Reference typemap enumeration.
//!
//! [`for_each_block`] walks a datatype tree recursively and yields every
//! *leaf* contiguous block as `(buffer_offset_bytes, len_bytes)` in typemap
//! (= packed stream) order. It is deliberately simple and unoptimized: it
//! serves as the ground truth against which the compiled
//! [`crate::dataloop`]/[`crate::segment`] engine is differential-tested,
//! and as the source for iovec flattening.

use crate::types::{Datatype, DatatypeKind};

/// Invoke `f(offset, len)` for every elementary-level contiguous block of
/// `count` copies of `dt`, placed at byte `base`, in typemap order.
///
/// Adjacent blocks are *not* merged here (see [`crate::flatten`] for the
/// merged form).
pub fn for_each_block(dt: &Datatype, count: u32, mut f: impl FnMut(i64, u64)) {
    for c in 0..count as i64 {
        walk(dt, c * dt.extent(), &mut f);
    }
}

fn walk(dt: &Datatype, base: i64, f: &mut impl FnMut(i64, u64)) {
    match &dt.kind {
        DatatypeKind::Elementary(e) => f(base, e.size()),
        DatatypeKind::Contiguous { count } => {
            let child = dt.child.as_ref().expect("contiguous child");
            let ext = child.extent();
            for i in 0..*count as i64 {
                walk(child, base + i * ext, f);
            }
        }
        DatatypeKind::Vector {
            count,
            blocklen,
            stride_bytes,
        } => {
            let child = dt.child.as_ref().expect("vector child");
            let ext = child.extent();
            for i in 0..*count as i64 {
                let block_base = base + i * stride_bytes;
                for j in 0..*blocklen as i64 {
                    walk(child, block_base + j * ext, f);
                }
            }
        }
        DatatypeKind::IndexedBlock {
            blocklen,
            displs_bytes,
        } => {
            let child = dt.child.as_ref().expect("indexed_block child");
            let ext = child.extent();
            for &d in displs_bytes.iter() {
                for j in 0..*blocklen as i64 {
                    walk(child, base + d + j * ext, f);
                }
            }
        }
        DatatypeKind::Indexed { blocks } => {
            let child = dt.child.as_ref().expect("indexed child");
            let ext = child.extent();
            for &(len, d) in blocks.iter() {
                for j in 0..len as i64 {
                    walk(child, base + d + j * ext, f);
                }
            }
        }
        DatatypeKind::Struct { fields } => {
            for field in fields.iter() {
                let ext = field.ty.extent();
                for j in 0..field.count as i64 {
                    walk(&field.ty, base + field.displ + j * ext, f);
                }
            }
        }
        DatatypeKind::Resized { .. } => {
            walk(dt.child.as_ref().expect("resized child"), base, f);
        }
    }
}

/// Collect the full (unmerged) typemap of `count` copies of `dt`.
pub fn blocks(dt: &Datatype, count: u32) -> Vec<(i64, u64)> {
    let mut v = Vec::new();
    for_each_block(dt, count, |off, len| v.push((off, len)));
    v
}

/// Reference scatter: compute, for a packed stream of `dt.size * count`
/// bytes, the destination buffer offset of every stream byte range, and
/// copy `src` into `dst` accordingly. `dst` is indexed from the true lower
/// bound upward; `dst[0]` corresponds to buffer offset `origin`.
///
/// Panics if any block falls outside `dst` — tests construct buffers from
/// the type bounds so this indicates a bug.
pub fn reference_unpack(dt: &Datatype, count: u32, src: &[u8], dst: &mut [u8], origin: i64) {
    let mut pos = 0usize;
    for_each_block(dt, count, |off, len| {
        let start = (off - origin) as usize;
        let len = len as usize;
        crate::kernels::copy_block(dst, start, src, pos, len);
        pos += len;
    });
    assert_eq!(pos, src.len(), "stream length mismatch in reference_unpack");
}

/// Reference gather (pack): inverse of [`reference_unpack`].
pub fn reference_pack(dt: &Datatype, count: u32, src: &[u8], origin: i64) -> Vec<u8> {
    let mut out = Vec::with_capacity((dt.size * count as u64) as usize);
    for_each_block(dt, count, |off, len| {
        let start = (off - origin) as usize;
        out.extend_from_slice(&src[start..start + len as usize]);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{elem, ArrayOrder, DatatypeExt};

    #[test]
    fn vector_blocks_in_order() {
        let t = Datatype::vector(3, 2, 4, &elem::int());
        let b = blocks(&t, 1);
        // 3 blocks of 2 ints each -> 6 elementary blocks of 4 bytes
        assert_eq!(b.len(), 6);
        assert_eq!(b[0], (0, 4));
        assert_eq!(b[1], (4, 4));
        assert_eq!(b[2], (16, 4));
        assert_eq!(b[5], (36, 4));
    }

    #[test]
    fn count_steps_by_extent() {
        let t = Datatype::vector(2, 1, 2, &elem::int());
        // extent = (1*2+1)*4 = 12? lb=0, ub = stride*(count-1)+blocklen ext = 8+4=12
        assert_eq!(t.extent(), 12);
        let b = blocks(&t, 2);
        assert_eq!(b.len(), 4);
        assert_eq!(b[2].0, 12);
        assert_eq!(b[3].0, 20);
    }

    #[test]
    fn total_bytes_equals_size() {
        let t = Datatype::subarray(
            &[5, 7, 3],
            &[2, 4, 2],
            &[1, 1, 0],
            ArrayOrder::C,
            &elem::double(),
        )
        .unwrap();
        let total: u64 = blocks(&t, 3).iter().map(|&(_, l)| l).sum();
        assert_eq!(total, t.size * 3);
    }

    #[test]
    fn reference_pack_unpack_roundtrip() {
        let t = Datatype::vector(4, 3, 5, &elem::int());
        let span = (t.true_ub - t.true_lb) as usize + t.extent() as usize; // room for count=2
        let mut buf = vec![0u8; span + 64];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let packed = reference_pack(&t, 2, &buf, 0);
        assert_eq!(packed.len(), (t.size * 2) as usize);
        let mut out = vec![0u8; buf.len()];
        reference_unpack(&t, 2, &packed, &mut out, 0);
        // every mapped byte must match, unmapped bytes must be zero
        let mut mapped = vec![false; buf.len()];
        for_each_block(&t, 2, |off, len| {
            for k in off..off + len as i64 {
                mapped[k as usize] = true;
            }
        });
        for i in 0..buf.len() {
            if mapped[i] {
                assert_eq!(out[i], buf[i], "mismatch at {i}");
            } else {
                assert_eq!(out[i], 0, "unmapped byte {i} written");
            }
        }
    }

    #[test]
    fn struct_field_order_defines_stream_order() {
        // field B placed before field A in memory, but A first in typemap
        let t = Datatype::struct_(&[1, 1], &[8, 0], &[elem::int(), elem::int()]).unwrap();
        let b = blocks(&t, 1);
        assert_eq!(b[0], (8, 4));
        assert_eq!(b[1], (0, 4));
    }
}
