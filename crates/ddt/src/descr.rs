//! Dataloop descriptor serialization — the byte image an MPI library
//! copies into NIC memory at commit time (paper Sec. 3.2.6 step 2 and
//! the "data moved to the NIC" annotations of Fig. 16).
//!
//! The format is a depth-first encoding of the compiled loop nest:
//!
//! ```text
//! node := tag:u8 body
//! body(Leaf)         := bytes:u64 offset:i64
//! body(Count)        := count:u64 step:i64 node
//! body(BlockIndexed) := n:u32 offset:i64 × n  node
//! body(Multi)        := n:u32 (offset:i64 node) × n
//! ```
//!
//! [`encode`]/[`decode`] round-trip exactly; `Dataloop::nic_descr_bytes`
//! reports the encoded length.

use std::sync::Arc;

use crate::dataloop::{Body, Dataloop, MultiEntry};
use crate::error::{DdtError, Result};

const TAG_LEAF: u8 = 0;
const TAG_COUNT: u8 = 1;
const TAG_BLOCK_INDEXED: u8 = 2;
const TAG_MULTI: u8 = 3;

/// Serialize a dataloop tree.
pub fn encode(dl: &Dataloop) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(dl, &mut out);
    out
}

fn encode_into(dl: &Dataloop, out: &mut Vec<u8>) {
    match &dl.body {
        Body::Leaf { bytes, offset } => {
            out.push(TAG_LEAF);
            out.extend_from_slice(&bytes.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
        }
        Body::Count { count, step, child } => {
            out.push(TAG_COUNT);
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&step.to_le_bytes());
            encode_into(child, out);
        }
        Body::BlockIndexed { offsets, child } => {
            out.push(TAG_BLOCK_INDEXED);
            out.extend_from_slice(&(offsets.len() as u32).to_le_bytes());
            for o in offsets.iter() {
                out.extend_from_slice(&o.to_le_bytes());
            }
            encode_into(child, out);
        }
        Body::Multi { entries, .. } => {
            out.push(TAG_MULTI);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for e in entries.iter() {
                out.extend_from_slice(&e.offset.to_le_bytes());
                encode_into(&e.child, out);
            }
        }
    }
}

/// Encoded length without materializing the bytes (used for NIC-memory
/// accounting on every post).
pub fn encoded_len(dl: &Dataloop) -> u64 {
    match &dl.body {
        Body::Leaf { .. } => 1 + 8 + 8,
        Body::Count { child, .. } => 1 + 8 + 8 + encoded_len(child),
        Body::BlockIndexed { offsets, child } => {
            1 + 4 + 8 * offsets.len() as u64 + encoded_len(child)
        }
        Body::Multi { entries, .. } => {
            1 + 4
                + entries
                    .iter()
                    .map(|e| 8 + encoded_len(&e.child))
                    .sum::<u64>()
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(DdtError::StreamOutOfBounds {
                pos: (self.pos + n) as u64,
                size: self.buf.len() as u64,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Deserialize a dataloop tree (recomputing sizes, block counts, depths
/// and Multi prefix tables).
pub fn decode(buf: &[u8]) -> Result<Arc<Dataloop>> {
    let mut r = Reader { buf, pos: 0 };
    let dl = decode_node(&mut r)?;
    if r.pos != buf.len() {
        return Err(DdtError::StreamOutOfBounds {
            pos: r.pos as u64,
            size: buf.len() as u64,
        });
    }
    Ok(dl)
}

fn decode_node(r: &mut Reader<'_>) -> Result<Arc<Dataloop>> {
    match r.u8()? {
        TAG_LEAF => {
            let bytes = r.u64()?;
            let offset = r.i64()?;
            Ok(Arc::new(Dataloop {
                body: Body::Leaf { bytes, offset },
                size: bytes,
                blocks: u64::from(bytes > 0),
                depth: 1,
            }))
        }
        TAG_COUNT => {
            let count = r.u64()?;
            let step = r.i64()?;
            let child = decode_node(r)?;
            Ok(Arc::new(Dataloop {
                size: count * child.size,
                blocks: count * child.blocks,
                depth: child.depth + 1,
                body: Body::Count { count, step, child },
            }))
        }
        TAG_BLOCK_INDEXED => {
            let n = r.u32()? as usize;
            let mut offsets = Vec::with_capacity(n);
            for _ in 0..n {
                offsets.push(r.i64()?);
            }
            let child = decode_node(r)?;
            Ok(Arc::new(Dataloop {
                size: n as u64 * child.size,
                blocks: n as u64 * child.blocks,
                depth: child.depth + 1,
                body: Body::BlockIndexed {
                    offsets: offsets.into(),
                    child,
                },
            }))
        }
        TAG_MULTI => {
            let n = r.u32()? as usize;
            let mut entries = Vec::with_capacity(n);
            let mut prefix = Vec::with_capacity(n + 1);
            let mut acc = 0u64;
            let mut blocks = 0u64;
            let mut depth = 0u32;
            for _ in 0..n {
                let offset = r.i64()?;
                let child = decode_node(r)?;
                prefix.push(acc);
                acc += child.size;
                blocks += child.blocks;
                depth = depth.max(child.depth);
                entries.push(MultiEntry { offset, child });
            }
            prefix.push(acc);
            Ok(Arc::new(Dataloop {
                body: Body::Multi {
                    entries: entries.into(),
                    prefix: prefix.into(),
                },
                size: acc,
                blocks,
                depth: depth + 1,
            }))
        }
        tag => Err(DdtError::StreamOutOfBounds {
            pos: tag as u64,
            size: 3,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataloop::compile;
    use crate::segment::Segment;
    use crate::sink::VecSink;
    use crate::types::{elem, ArrayOrder, Datatype, DatatypeExt};

    fn roundtrip_walk_equal(dt: &Datatype, count: u32) {
        let dl = compile(dt, count);
        let bytes = encode(&dl);
        assert_eq!(bytes.len() as u64, encoded_len(&dl));
        let back = decode(&bytes).expect("decodable");
        assert_eq!(back.size, dl.size);
        assert_eq!(back.blocks, dl.blocks);
        assert_eq!(back.depth, dl.depth);
        // identical block emission
        let mut a = VecSink::default();
        Segment::new(dl).advance(u64::MAX, &mut a);
        let mut b = VecSink::default();
        Segment::new(back).advance(u64::MAX, &mut b);
        assert_eq!(a.blocks, b.blocks, "walk mismatch for {}", dt.signature());
    }

    #[test]
    fn roundtrip_various() {
        roundtrip_walk_equal(&Datatype::contiguous(9, &elem::int()), 2);
        roundtrip_walk_equal(&Datatype::vector(17, 3, 7, &elem::double()), 3);
        roundtrip_walk_equal(
            &Datatype::indexed(&[2, 5, 1], &[0, 9, 30], &elem::float()).unwrap(),
            2,
        );
        roundtrip_walk_equal(
            &Datatype::subarray(
                &[6, 7, 8],
                &[2, 3, 4],
                &[1, 2, 0],
                ArrayOrder::C,
                &elem::int(),
            )
            .unwrap(),
            1,
        );
        let sa =
            Datatype::subarray(&[8, 8], &[3, 4], &[1, 2], ArrayOrder::C, &elem::double()).unwrap();
        let st = Datatype::struct_(&[1, 2], &[0, 2048], &[sa, elem::int()]).unwrap();
        roundtrip_walk_equal(&st, 2);
    }

    #[test]
    fn truncated_input_rejected() {
        let dl = compile(&Datatype::vector(4, 1, 3, &elem::int()), 1);
        let bytes = encode(&dl);
        for cut in [0usize, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let dl = compile(&Datatype::contiguous(4, &elem::int()), 1);
        let mut bytes = encode(&dl);
        bytes.push(0xFF);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(decode(&[9u8, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn encoding_size_scales_with_offset_lists() {
        let small = compile(
            &Datatype::indexed_block(1, &[0, 3, 7], &elem::int()).unwrap(),
            1,
        );
        let displs: Vec<i64> = (0..500).map(|i| i * 3 + (i % 2)).collect();
        let big = compile(
            &Datatype::indexed_block(1, &displs, &elem::int()).unwrap(),
            1,
        );
        assert!(encoded_len(&big) > encoded_len(&small) * 50);
    }
}
