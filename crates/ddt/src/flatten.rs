//! Datatype flattening: extraction of the merged iovec list.
//!
//! The Portals 4 baseline in the paper offloads non-contiguous transfers
//! as input/output vectors: a list of `(offset, len)` contiguous regions,
//! with O(m) space in the number of regions. [`flatten`] produces that
//! list (adjacent regions merged), and [`Iovec`] carries the accounting
//! the baseline model needs (entry count → NIC refill reads).

use crate::dataloop::compile;
use crate::segment::Segment;
use crate::sink::BlockSink;
use crate::types::Datatype;

/// One contiguous region of a flattened datatype.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IovEntry {
    /// Byte offset in the user buffer.
    pub offset: i64,
    /// Region length in bytes.
    pub len: u64,
}

/// A flattened datatype: merged contiguous regions in typemap order.
#[derive(Debug, Clone, Default)]
pub struct Iovec {
    /// The regions.
    pub entries: Vec<IovEntry>,
}

impl Iovec {
    /// Total data bytes described.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len).sum()
    }

    /// Bytes this list occupies when shipped to a NIC that stores
    /// `(virtual address, length)` pairs — 16 B per entry, the linear
    /// overhead the paper attributes to iovec offload.
    pub fn nic_bytes(&self) -> u64 {
        16 * self.entries.len() as u64
    }
}

struct MergeSink {
    entries: Vec<IovEntry>,
}

impl BlockSink for MergeSink {
    fn block(&mut self, buf_off: i64, len: u64, _stream_off: u64) {
        if len == 0 {
            return;
        }
        if let Some(last) = self.entries.last_mut() {
            if last.offset + last.len as i64 == buf_off {
                last.len += len;
                return;
            }
        }
        self.entries.push(IovEntry {
            offset: buf_off,
            len,
        });
    }
}

/// Flatten `count` copies of `dt` into a merged iovec.
pub fn flatten(dt: &Datatype, count: u32) -> Iovec {
    let dl = compile(dt, count);
    let mut seg = Segment::new(dl);
    let mut sink = MergeSink {
        entries: Vec::new(),
    };
    seg.advance(u64::MAX, &mut sink);
    Iovec {
        entries: sink.entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{elem, Datatype, DatatypeExt};

    #[test]
    fn contiguous_flattens_to_one_entry() {
        let t = Datatype::contiguous(64, &elem::int());
        let iov = flatten(&t, 4);
        assert_eq!(iov.entries.len(), 1);
        assert_eq!(
            iov.entries[0],
            IovEntry {
                offset: 0,
                len: 1024
            }
        );
    }

    #[test]
    fn vector_entry_per_block() {
        let t = Datatype::vector(10, 2, 5, &elem::int());
        let iov = flatten(&t, 1);
        assert_eq!(iov.entries.len(), 10);
        assert_eq!(iov.entries[1], IovEntry { offset: 20, len: 8 });
        assert_eq!(iov.total_bytes(), t.size);
        assert_eq!(iov.nic_bytes(), 160);
    }

    #[test]
    fn adjacent_count_copies_merge() {
        // gap-free vector repeated: whole thing one region
        let t = Datatype::vector(4, 2, 2, &elem::int());
        let iov = flatten(&t, 3);
        assert_eq!(iov.entries.len(), 1);
        assert_eq!(iov.total_bytes(), t.size * 3);
    }

    #[test]
    fn indexed_adjacent_blocks_merge() {
        let t = Datatype::indexed(&[2, 2, 4], &[0, 2, 8], &elem::int()).unwrap();
        let iov = flatten(&t, 1);
        // blocks at 0..8, 8..16 merge; 32..48 separate
        assert_eq!(iov.entries.len(), 2);
        assert_eq!(iov.entries[0], IovEntry { offset: 0, len: 16 });
        assert_eq!(
            iov.entries[1],
            IovEntry {
                offset: 32,
                len: 16
            }
        );
    }
}
