//! Error type for datatype construction and processing.

use std::fmt;

/// Errors raised by datatype constructors and the processing engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdtError {
    /// Constructor argument lists have mismatched lengths
    /// (e.g. `blocklens.len() != displs.len()`).
    LengthMismatch {
        /// What the constructor expected.
        expected: usize,
        /// What it got.
        got: usize,
    },
    /// A struct constructor was given no fields, a subarray no dims, …
    EmptyConstructor(&'static str),
    /// Subarray sub-size/start exceeds the array size in some dimension.
    SubarrayOutOfBounds {
        /// Dimension index.
        dim: usize,
    },
    /// A stream position beyond the total size of the described data.
    StreamOutOfBounds {
        /// Requested stream position.
        pos: u64,
        /// Total packed size.
        size: u64,
    },
    /// The unpack target buffer is too small for the datatype extent.
    BufferTooSmall {
        /// Needed bytes.
        needed: u64,
        /// Provided bytes.
        got: u64,
    },
    /// A block would land at a negative absolute buffer offset.
    NegativeOffset {
        /// The offending byte offset.
        offset: i64,
    },
    /// Datatype has zero size but data processing was requested.
    ZeroSizeType,
}

impl fmt::Display for DdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdtError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "argument length mismatch: expected {expected}, got {got}"
                )
            }
            DdtError::EmptyConstructor(which) => {
                write!(f, "constructor {which} requires at least one element")
            }
            DdtError::SubarrayOutOfBounds { dim } => {
                write!(f, "subarray start+subsize exceeds size in dimension {dim}")
            }
            DdtError::StreamOutOfBounds { pos, size } => {
                write!(f, "stream position {pos} beyond packed size {size}")
            }
            DdtError::BufferTooSmall { needed, got } => {
                write!(f, "buffer too small: need {needed} bytes, got {got}")
            }
            DdtError::NegativeOffset { offset } => {
                write!(f, "block at negative absolute offset {offset}")
            }
            DdtError::ZeroSizeType => write!(f, "datatype has zero size"),
        }
    }
}

impl std::error::Error for DdtError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DdtError>;
