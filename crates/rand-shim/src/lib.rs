//! # nca-rand — offline stand-in for the `rand` crate
//!
//! The workspace builds in containers with no access to crates.io, so
//! the external `rand` dependency is replaced by this shim (wired up via
//! dependency renaming in the workspace `Cargo.toml`). It implements the
//! small subset of the rand 0.9 API the workspace uses — seedable
//! `StdRng`, `Rng::random`/`random_range`, and `SliceRandom::shuffle` —
//! on top of xoshiro256++ seeded via splitmix64.
//!
//! Determinism note: the generated sequences differ from upstream
//! `rand`'s `StdRng` (which is ChaCha-based). Everything in this
//! workspace that consumes randomness is seeded and only cares about
//! *reproducibility*, not about matching a specific upstream stream.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` over its natural range
    /// (`f64` in `[0, 1)`, integers over the full domain).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly distributed value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types samplable over their natural range (stand-in for
/// `rand::distr::StandardUniform`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from (stand-in for
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased draw from `[0, n)` via Lemire-style rejection.
fn bounded<R: Rng>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty sample range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty sample range");
        let unit: f64 = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(1..=4i64);
            assert!((1..=4).contains(&v));
            let u = rng.random_range(10..20u32);
            assert!((10..20).contains(&u));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_draw_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }
}
