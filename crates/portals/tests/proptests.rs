//! Property tests for Portals matching and streaming puts.

use proptest::prelude::*;

use nca_portals::commands::{Region, StreamingPut};
use nca_portals::matching::{MatchEntry, MatchOutcome, MatchingUnit};
use nca_portals::packet::{packetize, PacketKind};

fn me(bits: u64, ignore: u64, use_once: bool) -> MatchEntry {
    MatchEntry {
        id: 0,
        match_bits: bits,
        ignore_bits: ignore,
        start: 0,
        length: 1 << 20,
        exec_ctx: None,
        use_once,
    }
}

proptest! {
    #[test]
    fn packetize_partitions_exactly(len in 0u64..1_000_000, payload in 1u64..8192) {
        let pkts = packetize(0, len, payload);
        let total: u64 = pkts.iter().map(|p| p.len).sum();
        prop_assert_eq!(total, len);
        // offsets are contiguous and ordered
        let mut pos = 0u64;
        for p in &pkts {
            prop_assert_eq!(p.offset, pos);
            pos += p.len;
        }
        // exactly one header and one completion role
        let heads = pkts.iter().filter(|p| p.kind.is_header()).count();
        let tails = pkts.iter().filter(|p| p.kind.is_completion()).count();
        prop_assert_eq!(heads, 1);
        prop_assert_eq!(tails, 1);
        // middle packets are full payloads
        for p in &pkts {
            if matches!(p.kind, PacketKind::Payload | PacketKind::Header) && pkts.len() > 1 {
                prop_assert_eq!(p.len, payload);
            }
        }
    }

    #[test]
    fn match_test_matches_definition(bits in any::<u64>(), mb in any::<u64>(), ig in any::<u64>()) {
        let e = me(mb, ig, false);
        prop_assert_eq!(e.matches(bits), (bits ^ mb) & !ig == 0);
    }

    #[test]
    fn matching_walk_is_deterministic(
        entries in proptest::collection::vec((any::<u8>(), any::<bool>()), 1..20),
        probe in any::<u8>(),
    ) {
        let build = || {
            let mut mu = MatchingUnit::new();
            for &(b, once) in &entries {
                mu.append_priority(me(b as u64, 0, once));
            }
            mu
        };
        let (o1, _) = build().match_header(0, probe as u64);
        let (o2, _) = build().match_header(0, probe as u64);
        prop_assert_eq!(o1, o2);
        // outcome agrees with a linear scan
        let expect = if entries.iter().any(|&(b, _)| b == probe) {
            MatchOutcome::Priority
        } else {
            MatchOutcome::Discard
        };
        prop_assert_eq!(o1, expect);
    }

    #[test]
    fn streaming_put_equals_plain_packetization(
        regions in proptest::collection::vec(1u64..5000, 1..30),
        payload in 64u64..4096,
    ) {
        let mut sp = StreamingPut::start(7, 0, payload, Region { offset: 0, len: regions[0] });
        let mut pkts = sp.drain_ready_packets();
        for (i, &len) in regions.iter().enumerate().skip(1) {
            sp.stream(Region { offset: i as u64 * 10_000, len }, i == regions.len() - 1);
            pkts.extend(sp.drain_ready_packets());
        }
        if regions.len() == 1 {
            sp.stream(Region { offset: 10_000, len: 0 }, true);
            pkts.extend(sp.drain_ready_packets());
        }
        prop_assert_eq!(pkts, sp.equivalent_put_packets());
    }
}
