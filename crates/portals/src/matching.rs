//! The Portals 4 matching unit: priority and overflow lists of match
//! entries, searched per header packet; matched MEs stay pinned to the
//! message until its completion packet arrives (paper Sec. 2.1.2).

use std::collections::HashMap;

/// 64-bit match bits (Portals `ptl_match_bits_t`).
pub type MatchBits = u64;

/// A matching list entry (ME): a memory descriptor plus match/ignore
/// bits and an optional sPIN execution-context binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchEntry {
    /// Identifier assigned on append.
    pub id: u64,
    /// Bits an incoming operation must match.
    pub match_bits: MatchBits,
    /// Bit positions excluded from the comparison.
    pub ignore_bits: MatchBits,
    /// Base offset of the exposed memory region.
    pub start: u64,
    /// Length of the exposed region.
    pub length: u64,
    /// sPIN execution context id, if packets matching this ME are to be
    /// processed by handlers; `None` → non-processing data path.
    pub exec_ctx: Option<u32>,
    /// Whether the ME unlinks from its list after the first match
    /// (`PTL_ME_USE_ONCE`). It remains pinned for in-flight packets of
    /// the matched message until completion.
    pub use_once: bool,
}

impl MatchEntry {
    /// Portals match test: `(incoming ^ me) & ~ignore == 0`.
    pub fn matches(&self, bits: MatchBits) -> bool {
        (bits ^ self.match_bits) & !self.ignore_bits == 0
    }
}

/// Which list satisfied a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOutcome {
    /// Matched on the priority list (expected message).
    Priority,
    /// Matched on the overflow list (unexpected message).
    Overflow,
    /// No match anywhere — the operation is discarded.
    Discard,
}

/// The matching unit holding both lists and the in-flight message table.
#[derive(Debug, Default, Clone)]
pub struct MatchingUnit {
    next_id: u64,
    priority: Vec<MatchEntry>,
    overflow: Vec<MatchEntry>,
    /// msg_id → ME pinned by the header packet of that message.
    inflight: HashMap<u64, MatchEntry>,
}

impl MatchingUnit {
    /// Create an empty matching unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an ME to the priority list (`PtlMEAppend(PTL_PRIORITY_LIST)`).
    /// Returns the assigned id.
    pub fn append_priority(&mut self, mut me: MatchEntry) -> u64 {
        me.id = self.next_id;
        self.next_id += 1;
        self.priority.push(me);
        self.next_id - 1
    }

    /// Append an ME to the overflow list.
    pub fn append_overflow(&mut self, mut me: MatchEntry) -> u64 {
        me.id = self.next_id;
        self.next_id += 1;
        self.overflow.push(me);
        self.next_id - 1
    }

    /// Entries currently on the priority list.
    pub fn priority_len(&self) -> usize {
        self.priority.len()
    }

    /// Entries currently on the overflow list.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Messages currently pinned (header seen, completion not yet).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Process the header packet of message `msg_id`: walk the priority
    /// list then the overflow list. On a match, the ME is pinned to the
    /// message (and unlinked from its list if `use_once`).
    pub fn match_header(
        &mut self,
        msg_id: u64,
        bits: MatchBits,
    ) -> (MatchOutcome, Option<&MatchEntry>) {
        let from_priority = self.priority.iter().position(|me| me.matches(bits));
        let (outcome, pos, list_is_priority) = match from_priority {
            Some(p) => (MatchOutcome::Priority, p, true),
            None => match self.overflow.iter().position(|me| me.matches(bits)) {
                Some(p) => (MatchOutcome::Overflow, p, false),
                None => return (MatchOutcome::Discard, None),
            },
        };
        let list = if list_is_priority {
            &mut self.priority
        } else {
            &mut self.overflow
        };
        let me = if list[pos].use_once {
            list.remove(pos)
        } else {
            list[pos].clone()
        };
        self.inflight.insert(msg_id, me);
        (outcome, self.inflight.get(&msg_id))
    }

    /// Look up the pinned ME for a payload/completion packet of an
    /// already-matched message.
    pub fn lookup_inflight(&self, msg_id: u64) -> Option<&MatchEntry> {
        self.inflight.get(&msg_id)
    }

    /// Completion packet processed: release the pin. Returns the ME.
    pub fn complete(&mut self, msg_id: u64) -> Option<MatchEntry> {
        self.inflight.remove(&msg_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn me(bits: MatchBits, ignore: MatchBits, use_once: bool) -> MatchEntry {
        MatchEntry {
            id: 0,
            match_bits: bits,
            ignore_bits: ignore,
            start: 0,
            length: 4096,
            exec_ctx: None,
            use_once,
        }
    }

    #[test]
    fn match_bits_semantics() {
        let e = me(0xAB00, 0x00FF, false);
        assert!(e.matches(0xAB00));
        assert!(e.matches(0xAB42)); // low byte ignored
        assert!(!e.matches(0xAC00));
    }

    #[test]
    fn priority_before_overflow() {
        let mut mu = MatchingUnit::new();
        mu.append_overflow(me(1, 0, false));
        mu.append_priority(me(1, 0, false));
        let (out, _) = mu.match_header(0, 1);
        assert_eq!(out, MatchOutcome::Priority);
    }

    #[test]
    fn overflow_fallback_for_unexpected() {
        let mut mu = MatchingUnit::new();
        mu.append_priority(me(7, 0, false));
        mu.append_overflow(me(0, !0, false)); // wildcard
        let (out, hit) = mu.match_header(0, 99);
        assert_eq!(out, MatchOutcome::Overflow);
        assert!(hit.is_some());
    }

    #[test]
    fn discard_when_nothing_matches() {
        let mut mu = MatchingUnit::new();
        mu.append_priority(me(7, 0, false));
        let (out, hit) = mu.match_header(0, 8);
        assert_eq!(out, MatchOutcome::Discard);
        assert!(hit.is_none());
        assert_eq!(mu.inflight_len(), 0);
    }

    #[test]
    fn use_once_unlinks_but_stays_pinned() {
        let mut mu = MatchingUnit::new();
        mu.append_priority(me(5, 0, true));
        let (out, _) = mu.match_header(42, 5);
        assert_eq!(out, MatchOutcome::Priority);
        assert_eq!(mu.priority_len(), 0, "use_once ME must unlink");
        // payload packets of msg 42 still find it
        assert!(mu.lookup_inflight(42).is_some());
        // a second message no longer matches
        let (out2, _) = mu.match_header(43, 5);
        assert_eq!(out2, MatchOutcome::Discard);
        // completion releases the pin
        assert!(mu.complete(42).is_some());
        assert!(mu.lookup_inflight(42).is_none());
    }

    #[test]
    fn persistent_me_matches_many_messages() {
        let mut mu = MatchingUnit::new();
        mu.append_priority(me(5, 0, false));
        for msg in 0..10 {
            let (out, _) = mu.match_header(msg, 5);
            assert_eq!(out, MatchOutcome::Priority);
        }
        assert_eq!(mu.inflight_len(), 10);
        assert_eq!(mu.priority_len(), 1);
    }

    #[test]
    fn first_matching_entry_wins() {
        let mut mu = MatchingUnit::new();
        let a = mu.append_priority(me(1, 0, false));
        let _b = mu.append_priority(me(1, 0, false));
        let (_, hit) = mu.match_header(0, 1);
        assert_eq!(hit.unwrap().id, a);
    }
}
