//! # nca-portals — Portals 4 network programming interface model
//!
//! The subset of Portals 4 the paper builds on, plus the two interface
//! extensions it introduces:
//!
//! * [`matching`] — matching ([`matching::MatchEntry`]) and non-matching
//!   list entries on **priority** and **overflow** lists, with the Portals
//!   matching walk (priority first, then overflow; discard on no match)
//!   executed per *header* packet, and in-flight message → ME pinning
//!   until the completion packet.
//! * [`packet`] — message packetization into header / payload /
//!   completion packets (header first, completion last, fixed payload
//!   size — 2 KiB in the paper's simulations).
//! * [`event`] — full events and lightweight counting events.
//! * [`commands`] — NIC command descriptors: `PtlPut`, the paper's
//!   **streaming puts** (`PtlSPutStart` / `PtlSPutStream`, Sec. 3.1.1)
//!   that emit several memory regions as *one* message, and
//!   `PtlProcessPut` (Sec. 3.1.2) which routes outbound packets through
//!   the sPIN handlers instead of filling them from host memory.

pub mod commands;
pub mod event;
pub mod matching;
pub mod packet;

pub use commands::{Command, ProcessPut, Put, StreamingPut};
pub use event::{EventKind, EventQueue, FullEvent};
pub use matching::{MatchBits, MatchEntry, MatchOutcome, MatchingUnit};
pub use packet::{packetize, packetize_wire, Packet, PacketKind, PktHeader};
