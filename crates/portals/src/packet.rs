//! Message packetization.
//!
//! The sPIN NIC model distinguishes three packet types (paper Sec. 2.1.2):
//! the **header** packet (first of a message, triggers matching), the
//! **completion** packet (last, releases the pinned ME and fires the
//! completion handler), and **payload** packets in between. The network
//! is assumed to deliver the header first and the completion last; payload
//! packets may be reordered.
//!
//! Packet metadata ([`PktHeader`]) is a small `Copy` struct; a full
//! [`Packet`] pairs it with a [`PktView`] payload handle into the shared
//! [`WireBuf`] packed stream, so packets can be dispatched, retransmitted
//! and DMA'd without ever copying payload bytes.

use nca_sim::{PktView, WireBuf};

/// Packet classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// First packet of a message (carries match information + payload).
    Header,
    /// Intermediate packet.
    Payload,
    /// Last packet of a message.
    Completion,
    /// Single-packet message: header and completion at once.
    Only,
}

impl PacketKind {
    /// Whether this packet triggers the matching walk.
    pub fn is_header(self) -> bool {
        matches!(self, PacketKind::Header | PacketKind::Only)
    }

    /// Whether this packet closes the message.
    pub fn is_completion(self) -> bool {
        matches!(self, PacketKind::Completion | PacketKind::Only)
    }
}

/// Packet metadata: everything on the wire except the payload bytes.
/// Small and `Copy` — dispatch paths pass it by value instead of cloning
/// a packet per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PktHeader {
    /// Message this packet belongs to.
    pub msg_id: u64,
    /// Sequence number within the message (0-based).
    pub seq: u64,
    /// Byte offset of the payload within the packed message stream.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Packet classification.
    pub kind: PacketKind,
    /// Payload checksum the sender stamped into the header (FNV-1a over
    /// the payload bytes; see [`payload_checksum`]). Receivers verify it
    /// to detect in-flight corruption. `0` when the sender did not
    /// checksum (e.g. closed-form pipelines that never hit a lossy
    /// network path).
    pub checksum: u32,
}

impl PktHeader {
    /// Bytes on the wire: payload plus link/protocol header.
    pub fn wire_bytes(&self, header_bytes: u64) -> u64 {
        self.len + header_bytes
    }

    /// Stamp the header checksum from the packed message stream this
    /// packet's `[offset, offset+len)` range points into.
    pub fn stamp_checksum(&mut self, stream: &[u8]) {
        let lo = self.offset as usize;
        let hi = lo + self.len as usize;
        self.checksum = payload_checksum(&stream[lo..hi]);
    }

    /// Whether `payload` matches the stamped checksum.
    pub fn verify_payload(&self, payload: &[u8]) -> bool {
        self.checksum == payload_checksum(payload)
    }
}

/// One packet of a message: `Copy` metadata plus a cheap shared-ownership
/// handle to its payload bytes in the packed stream. Cloning a `Packet`
/// copies the header and bumps the payload refcount — no bytes move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Wire metadata.
    pub hdr: PktHeader,
    /// Payload bytes, viewed into the message's [`WireBuf`].
    pub payload: PktView,
}

impl Packet {
    /// Stamp the header checksum from this packet's own payload view.
    pub fn stamp_checksum(&mut self) {
        self.hdr.checksum = payload_checksum(&self.payload);
    }
}

impl std::ops::Deref for Packet {
    type Target = PktHeader;
    fn deref(&self) -> &PktHeader {
        &self.hdr
    }
}

impl std::ops::DerefMut for Packet {
    fn deref_mut(&mut self) -> &mut PktHeader {
        &mut self.hdr
    }
}

/// FNV-1a over the payload bytes (32-bit). Any single-byte change flips
/// the digest: the per-byte transform `h = (h ^ b) * prime` is injective
/// in `h` for fixed suffixes, so a one-byte flip always propagates to
/// the final value — exactly the corruption model the fault injector
/// produces.
pub fn payload_checksum(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in payload {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Stamp checksums on every packet of a message from each packet's own
/// payload view. Lossless pipelines skip this — checksums only matter
/// when the fault layer can corrupt bytes in flight.
pub fn stamp_checksums(pkts: &mut [Packet]) {
    for p in pkts {
        p.stamp_checksum();
    }
}

/// Split a message of `msg_len` bytes into packet headers with at most
/// `payload_size` payload each. A zero-length message still produces one
/// (empty) `Only` packet so matching and completion semantics hold.
pub fn packetize(msg_id: u64, msg_len: u64, payload_size: u64) -> Vec<PktHeader> {
    assert!(payload_size > 0, "payload size must be positive");
    if msg_len == 0 {
        return vec![PktHeader {
            msg_id,
            seq: 0,
            offset: 0,
            len: 0,
            kind: PacketKind::Only,
            checksum: payload_checksum(&[]),
        }];
    }
    let npkt = msg_len.div_ceil(payload_size);
    (0..npkt)
        .map(|seq| {
            let offset = seq * payload_size;
            let len = payload_size.min(msg_len - offset);
            let kind = match (seq == 0, seq == npkt - 1) {
                (true, true) => PacketKind::Only,
                (true, false) => PacketKind::Header,
                (false, true) => PacketKind::Completion,
                (false, false) => PacketKind::Payload,
            };
            PktHeader {
                msg_id,
                seq,
                offset,
                len,
                kind,
                checksum: 0,
            }
        })
        .collect()
}

/// Packetize a packed stream, attaching each packet's payload view into
/// the shared buffer. The only allocation is the `Vec` of packets.
pub fn packetize_wire(msg_id: u64, buf: &WireBuf, payload_size: u64) -> Vec<Packet> {
    packetize(msg_id, buf.len() as u64, payload_size)
        .into_iter()
        .map(|hdr| Packet {
            payload: buf.view(hdr.offset as usize, hdr.len as usize),
            hdr,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple() {
        let pkts = packetize(7, 8192, 2048);
        assert_eq!(pkts.len(), 4);
        assert_eq!(pkts[0].kind, PacketKind::Header);
        assert_eq!(pkts[1].kind, PacketKind::Payload);
        assert_eq!(pkts[2].kind, PacketKind::Payload);
        assert_eq!(pkts[3].kind, PacketKind::Completion);
        assert!(pkts.iter().all(|p| p.len == 2048));
        assert_eq!(pkts[3].offset, 6144);
    }

    #[test]
    fn trailing_partial_packet() {
        let pkts = packetize(0, 5000, 2048);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[2].len, 5000 - 4096);
        assert_eq!(pkts[2].kind, PacketKind::Completion);
        let total: u64 = pkts.iter().map(|p| p.len).sum();
        assert_eq!(total, 5000);
    }

    #[test]
    fn single_packet_message() {
        let pkts = packetize(1, 100, 2048);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].kind, PacketKind::Only);
        assert!(pkts[0].kind.is_header());
        assert!(pkts[0].kind.is_completion());
    }

    #[test]
    fn zero_length_message() {
        let pkts = packetize(1, 0, 2048);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].len, 0);
        assert_eq!(pkts[0].kind, PacketKind::Only);
    }

    #[test]
    fn packetize_wire_attaches_matching_views() {
        let stream: WireBuf = (0..5000)
            .map(|i| (i % 251) as u8)
            .collect::<Vec<u8>>()
            .into();
        let pkts = packetize_wire(9, &stream, 2048);
        assert_eq!(pkts.len(), 3);
        for p in &pkts {
            let lo = p.offset as usize;
            assert_eq!(&p.payload[..], &stream[lo..lo + p.len as usize]);
        }
        // Views share storage with the stream — no payload copies.
        assert!(std::ptr::eq(
            pkts[1].payload.as_ref().as_ptr(),
            stream[2048..].as_ptr()
        ));
    }

    #[test]
    fn packetize_wire_zero_length_stream() {
        let pkts = packetize_wire(1, &WireBuf::empty(), 2048);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].payload.is_empty());
        assert!(pkts[0].verify_payload(&pkts[0].payload));
    }

    #[test]
    fn packetize_wire_payload_size_exceeds_msg_len() {
        let stream: WireBuf = vec![3u8; 100].into();
        let pkts = packetize_wire(1, &stream, 2048);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].kind, PacketKind::Only);
        assert_eq!(pkts[0].payload.len(), 100);
    }

    #[test]
    fn checksum_detects_any_single_byte_flip() {
        let stream: WireBuf = (0..4096)
            .map(|i| (i % 251) as u8)
            .collect::<Vec<u8>>()
            .into();
        let mut pkts = packetize_wire(3, &stream, 2048);
        stamp_checksums(&mut pkts);
        for p in &pkts {
            assert!(p.verify_payload(&p.payload));
            // Flip each byte in turn with several masks: all must fail.
            let mut copy = p.payload.to_vec();
            for at in [0usize, copy.len() / 2, copy.len() - 1] {
                for mask in [1u8, 0x80, 0xFF] {
                    copy[at] ^= mask;
                    assert!(!p.verify_payload(&copy), "flip at {at} mask {mask:#x}");
                    copy[at] ^= mask;
                }
            }
        }
    }

    #[test]
    fn zero_length_packet_checksums_consistently() {
        let pkts = packetize(1, 0, 2048);
        assert!(pkts[0].verify_payload(&[]));
    }

    #[test]
    fn wire_bytes_include_header() {
        let p = PktHeader {
            msg_id: 0,
            seq: 0,
            offset: 0,
            len: 2048,
            kind: PacketKind::Only,
            checksum: 0,
        };
        assert_eq!(p.wire_bytes(64), 2112);
    }
}
