//! NIC command descriptors issued through the command queue, including
//! the paper's two sender-side extensions.

use crate::packet::{packetize, PacketKind, PktHeader};

/// A contiguous memory region `(offset, len)` in the initiator's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Byte offset in the initiator buffer.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Classic `PtlPut`: one contiguous region, one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Put {
    /// Message id.
    pub msg_id: u64,
    /// Target match bits.
    pub match_bits: u64,
    /// The region to send.
    pub region: Region,
}

/// `PtlProcessPut` (Sec. 3.1.2): like a put, but outbound packets are
/// *not* filled from host memory by the outbound engine; instead a
/// Handler Execution Request is generated per packet and the sender-side
/// handler gathers the data (outbound sPIN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessPut {
    /// Message id.
    pub msg_id: u64,
    /// Target match bits.
    pub match_bits: u64,
    /// Total message length the handlers will produce.
    pub msg_len: u64,
    /// Execution context holding the sender-side handlers.
    pub exec_ctx: u32,
}

/// A streaming put in construction (Sec. 3.1.1): `PtlSPutStart` opens the
/// message, `PtlSPutStream` appends further regions, the final call sets
/// the end-of-message flag. All regions become **one** message: one
/// matching walk and one event at the target, packets numbered
/// continuously.
#[derive(Debug, Clone)]
pub struct StreamingPut {
    /// Message id.
    pub msg_id: u64,
    /// Target match bits.
    pub match_bits: u64,
    /// Payload size used for packetization.
    pub payload_size: u64,
    regions: Vec<Region>,
    buffered: u64,
    emitted_pkts: u64,
    emitted_bytes: u64,
    closed: bool,
}

impl StreamingPut {
    /// `PtlSPutStart`: open a streaming put with its first region.
    pub fn start(msg_id: u64, match_bits: u64, payload_size: u64, first: Region) -> Self {
        assert!(payload_size > 0);
        let mut sp = StreamingPut {
            msg_id,
            match_bits,
            payload_size,
            regions: Vec::new(),
            buffered: 0,
            emitted_pkts: 0,
            emitted_bytes: 0,
            closed: false,
        };
        sp.push_region(first, false);
        sp
    }

    /// `PtlSPutStream`: append a region; `end_of_message` closes the put.
    pub fn stream(&mut self, region: Region, end_of_message: bool) {
        assert!(!self.closed, "streaming put already closed");
        self.push_region(region, end_of_message);
    }

    fn push_region(&mut self, region: Region, end: bool) {
        self.regions.push(region);
        self.buffered += region.len;
        self.closed = end;
    }

    /// Whether the end-of-message flag has been given.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Total bytes supplied so far.
    pub fn bytes_supplied(&self) -> u64 {
        self.emitted_bytes + self.buffered
    }

    /// All regions supplied so far (for gather simulation).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Packets that can be emitted now: full payloads, plus the trailing
    /// partial packet once the put is closed. Packets of one streaming
    /// put form a single message (continuous sequence numbers); the last
    /// drained packet after closing is the completion packet.
    pub fn drain_ready_packets(&mut self) -> Vec<PktHeader> {
        let mut out = Vec::new();
        while self.buffered >= self.payload_size {
            out.push(self.mk_packet(self.payload_size, false));
        }
        if self.closed && self.buffered > 0 {
            let len = self.buffered;
            out.push(self.mk_packet(len, true));
        }
        if self.closed {
            if let Some(last) = out.last_mut() {
                last.kind = if last.seq == 0 {
                    PacketKind::Only
                } else {
                    PacketKind::Completion
                };
            }
        }
        out
    }

    fn mk_packet(&mut self, len: u64, _last: bool) -> PktHeader {
        let seq = self.emitted_pkts;
        let pkt = PktHeader {
            msg_id: self.msg_id,
            seq,
            offset: self.emitted_bytes,
            len,
            kind: if seq == 0 {
                PacketKind::Header
            } else {
                PacketKind::Payload
            },
            checksum: 0,
        };
        self.emitted_pkts += 1;
        self.emitted_bytes += len;
        self.buffered -= len;
        pkt
    }

    /// The packet stream an equivalent single put of the same total
    /// length would produce (for equivalence testing).
    pub fn equivalent_put_packets(&self) -> Vec<PktHeader> {
        packetize(self.msg_id, self.bytes_supplied(), self.payload_size)
    }
}

/// Any NIC command (pushed to the command queue by host or handlers).
#[derive(Debug, Clone)]
pub enum Command {
    /// Plain put.
    Put(Put),
    /// Outbound-sPIN put.
    ProcessPut(ProcessPut),
    /// A handler-issued DMA write toward host memory
    /// (`PltHandlerDMAToHostNB`); `event` = generate a full event on
    /// completion (the paper's `NO_EVENT` option inverted).
    DmaToHost {
        /// Host buffer offset.
        host_off: i64,
        /// Length in bytes.
        len: u64,
        /// Whether completion posts a full event.
        event: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_put_single_message_packets() {
        let mut sp = StreamingPut::start(
            9,
            0xC0DE,
            2048,
            Region {
                offset: 0,
                len: 3000,
            },
        );
        let p1 = sp.drain_ready_packets();
        assert_eq!(p1.len(), 1); // one full payload ready
        assert_eq!(p1[0].kind, PacketKind::Header);
        sp.stream(
            Region {
                offset: 8192,
                len: 2000,
            },
            false,
        );
        let p2 = sp.drain_ready_packets();
        assert_eq!(p2.len(), 1);
        assert_eq!(p2[0].seq, 1);
        assert_eq!(p2[0].kind, PacketKind::Payload);
        sp.stream(
            Region {
                offset: 100_000,
                len: 1000,
            },
            true,
        );
        let p3 = sp.drain_ready_packets();
        // 3000+2000+1000 = 6000; 4096 emitted; 1904 remain -> 1 final pkt
        assert_eq!(p3.len(), 1);
        assert_eq!(p3[0].len, 1904);
        assert_eq!(p3[0].kind, PacketKind::Completion);
        assert_eq!(sp.bytes_supplied(), 6000);
    }

    #[test]
    fn streaming_equals_plain_put_packetization() {
        let mut sp = StreamingPut::start(
            3,
            0,
            2048,
            Region {
                offset: 0,
                len: 2500,
            },
        );
        sp.stream(
            Region {
                offset: 4096,
                len: 2500,
            },
            false,
        );
        sp.stream(
            Region {
                offset: 9000,
                len: 1192,
            },
            true,
        );
        let mut streamed = sp.drain_ready_packets();
        let mut more = sp.drain_ready_packets();
        streamed.append(&mut more);
        assert_eq!(streamed, sp.equivalent_put_packets());
    }

    #[test]
    fn single_region_closed_start_is_only_packet() {
        let mut sp = StreamingPut::start(
            1,
            0,
            2048,
            Region {
                offset: 0,
                len: 100,
            },
        );
        sp.stream(
            Region {
                offset: 200,
                len: 0,
            },
            true,
        );
        let pkts = sp.drain_ready_packets();
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].kind, PacketKind::Only);
    }

    #[test]
    #[should_panic(expected = "already closed")]
    fn streaming_after_close_panics() {
        let mut sp = StreamingPut::start(1, 0, 2048, Region { offset: 0, len: 10 });
        sp.stream(
            Region {
                offset: 16,
                len: 10,
            },
            true,
        );
        sp.stream(
            Region {
                offset: 32,
                len: 10,
            },
            false,
        );
    }
}
