//! Completion notification: full events on an event queue, plus
//! lightweight counting events (paper Sec. 2.1.1).

/// Full-event kinds (subset of `ptl_event_kind_t` relevant here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An incoming put landed (non-processing path).
    Put,
    /// An incoming put landed in the overflow list (unexpected).
    PutOverflow,
    /// A handler-issued DMA transfer completed with event generation
    /// (the completion handler's final zero-byte write).
    DmaCompleted,
    /// An outbound operation was acknowledged.
    Ack,
    /// Handler error (e.g. NIC memory exhausted mid-message).
    Error,
}

/// A full event as delivered to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullEvent {
    /// What happened.
    pub kind: EventKind,
    /// Message id the event refers to.
    pub msg_id: u64,
    /// Bytes involved (message or transfer size).
    pub size: u64,
    /// Simulated time (ps) the event was posted.
    pub time: u64,
}

/// An event queue plus counting-event counters.
#[derive(Debug, Default)]
pub struct EventQueue {
    events: Vec<FullEvent>,
    /// Lightweight counter incremented per counting event.
    pub count: u64,
    read_pos: usize,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Post a full event.
    pub fn post(&mut self, ev: FullEvent) {
        self.events.push(ev);
    }

    /// Bump the counting-event counter (`PtlCTInc` semantics).
    pub fn count_event(&mut self) {
        self.count += 1;
    }

    /// Pop the next unread event (`PtlEQGet`).
    pub fn get(&mut self) -> Option<FullEvent> {
        let ev = self.events.get(self.read_pos).copied();
        if ev.is_some() {
            self.read_pos += 1;
        }
        ev
    }

    /// Unread events remaining.
    pub fn pending(&self) -> usize {
        self.events.len() - self.read_pos
    }

    /// All events ever posted (for test inspection).
    pub fn all(&self) -> &[FullEvent] {
        &self.events
    }

    /// Consume the queue, returning every event ever posted (report
    /// extraction without a copy).
    pub fn into_all(self) -> Vec<FullEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_get_semantics() {
        let mut q = EventQueue::new();
        q.post(FullEvent {
            kind: EventKind::Put,
            msg_id: 1,
            size: 8,
            time: 10,
        });
        q.post(FullEvent {
            kind: EventKind::DmaCompleted,
            msg_id: 1,
            size: 0,
            time: 20,
        });
        assert_eq!(q.pending(), 2);
        assert_eq!(q.get().unwrap().kind, EventKind::Put);
        assert_eq!(q.get().unwrap().time, 20);
        assert!(q.get().is_none());
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn counting_events_are_cheap_counters() {
        let mut q = EventQueue::new();
        for _ in 0..5 {
            q.count_event();
        }
        assert_eq!(q.count, 5);
        assert_eq!(q.pending(), 0);
    }
}
