//! # ncmt — Network-accelerated non-contiguous memory transfers
//!
//! A full reproduction of *"Network-Accelerated Non-Contiguous Memory
//! Transfers"* (Di Girolamo et al., SC'19): NIC offload of MPI derived
//! datatype processing on a simulated sPIN/Portals 4 NIC, with the
//! specialized and general (HPU-local / RO-CP / RW-CP) handler
//! strategies, the host-unpack and Portals-iovec baselines, the PULP
//! hardware prototype models, and a LogGOPS application-scale
//! simulator.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`ddt`] — MPI derived-datatype engine (constructors, dataloops,
//!   segments, checkpoints, pack/unpack, flattening, normalization).
//! * [`sim`] — deterministic discrete-event engine.
//! * [`telemetry`] — simulation-time-aware tracing & metrics
//!   (ring sink, Perfetto/CSV export, aggregation).
//! * [`memsim`] — host LLC/memory-traffic simulation.
//! * [`portals`] — Portals 4 matching, packetization, streaming puts.
//! * [`spin`] — the sPIN NIC model (HPUs, scheduler, DMA/PCIe).
//! * [`core`] — the paper's contribution: offloaded DDT processing.
//! * [`pulp`] — PULP accelerator prototype models.
//! * [`loggopsim`] — LogGOPS simulator + FFT2D strong scaling.
//! * [`mpi`] — mini message-passing layer tying it all together.
//! * [`workloads`] — the thirteen application datatypes of Fig. 16.
//! * [`traffic`] — open-loop multi-tenant traffic engine with
//!   per-tenant tail-latency accounting over the queue disciplines.
//! * [`scenario`] — declarative scenario configs: one JSON document
//!   compiling workload × traffic × faults × scheduling × sweep into
//!   the same deterministic pool jobs the CLI subcommands run.
//!
//! ## Quickstart
//!
//! ```
//! use ncmt::core::runner::{Experiment, Strategy};
//! use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
//! use ncmt::spin::params::NicParams;
//!
//! // A strided receive: 512 blocks of 16 doubles, stride 32.
//! let dt = Datatype::vector(512, 16, 32, &elem::double());
//! let exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
//! let offloaded = exp.run(Strategy::RwCp);
//! let host = exp.run_host();
//! assert!(offloaded.processing_time() < host.processing_time);
//! ```

pub use nca_core as core;
pub use nca_ddt as ddt;
pub use nca_loggopsim as loggopsim;
pub use nca_memsim as memsim;
pub use nca_mpi as mpi;
pub use nca_portals as portals;
pub use nca_pulp as pulp;
pub use nca_scenario as scenario;
pub use nca_sim as sim;
pub use nca_spin as spin;
pub use nca_telemetry as telemetry;
pub use nca_traffic as traffic;
pub use nca_workloads as workloads;
