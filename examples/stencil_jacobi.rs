//! 2D Jacobi stencil with datatype halo exchange over the `nca-mpi`
//! layer — the "stencil computations in regular grids" workload the
//! paper's motivation names.
//!
//! Four simulated ranks hold column stripes of a grid; each iteration
//! exchanges boundary columns (a strided `vector` datatype — exactly the
//! matrix-column case) through the simulated sPIN NIC, then relaxes.
//! The distributed result is verified against a single-rank reference,
//! and the simulated clocks compare offloaded vs host-fallback receives.
//!
//! ```sh
//! cargo run --release --example stencil_jacobi
//! ```

use ncmt::ddt::pack::buffer_span;
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::mpi::World;
use ncmt::spin::params::NicParams;

const N: usize = 64; // global grid: N rows x N cols
const RANKS: usize = 4;
const ITERS: usize = 10;

type Grid = Vec<f64>; // row-major N x (cols+2) local stripe with ghost cols

fn idx(row: usize, col: usize, width: usize) -> usize {
    row * width + col
}

fn reference() -> Vec<f64> {
    let mut g = vec![0.0f64; N * N];
    for (i, v) in g.iter_mut().enumerate() {
        *v = ((i * 31) % 97) as f64;
    }
    for _ in 0..ITERS {
        let mut next = g.clone();
        for r in 1..N - 1 {
            for c in 1..N - 1 {
                next[idx(r, c, N)] = 0.25
                    * (g[idx(r - 1, c, N)]
                        + g[idx(r + 1, c, N)]
                        + g[idx(r, c - 1, N)]
                        + g[idx(r, c + 1, N)]);
            }
        }
        g = next;
    }
    g
}

fn main() {
    let cols = N / RANKS;
    let width = cols + 2; // + ghost columns
                          // Local stripes with ghost columns.
    let mut grids: Vec<Grid> = (0..RANKS)
        .map(|rk| {
            let mut g = vec![0.0f64; N * width];
            for r in 0..N {
                for c in 0..cols {
                    let gc = rk * cols + c;
                    g[idx(r, c + 1, width)] = ((idx(r, gc, N) * 31) % 97) as f64;
                }
            }
            g
        })
        .collect();

    // Halo datatype: one column of the local stripe = vector(N, 1, width).
    let col_dt = Datatype::vector(N as u32, 1, width as i64, &elem::double());
    let (origin, span) = buffer_span(&col_dt, 1);
    assert_eq!(origin, 0);

    let mut world = World::new(RANKS as u32, NicParams::with_hpus(16));
    let as_bytes = |g: &Grid, col: usize| -> Vec<u8> {
        // serialize the stripe starting at `col` so the column datatype
        // picks column `col` of each row
        let mut out = vec![0u8; span as usize];
        for r in 0..N {
            let v = g[idx(r, col, width)];
            let at = (r * width) * 8;
            if at + 8 <= out.len() {
                out[at..at + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        out
    };

    #[allow(clippy::needless_range_loop)] // rank indices mirror MPI code
    for _ in 0..ITERS {
        // Post halo receives, then send boundary columns.
        let mut reqs = Vec::new();
        for rk in 0..RANKS {
            if rk > 0 {
                reqs.push((
                    rk,
                    'L',
                    world.irecv(rk as u32, &col_dt, 1, rk as u32 - 1, 1),
                ));
            }
            if rk < RANKS - 1 {
                reqs.push((
                    rk,
                    'R',
                    world.irecv(rk as u32, &col_dt, 1, rk as u32 + 1, 2),
                ));
            }
        }
        for rk in 0..RANKS {
            if rk < RANKS - 1 {
                let bytes = as_bytes(&grids[rk], cols); // rightmost real col
                world.isend(rk as u32, &bytes, 0, &col_dt, 1, rk as u32 + 1, 1);
            }
            if rk > 0 {
                let bytes = as_bytes(&grids[rk], 1); // leftmost real col
                world.isend(rk as u32, &bytes, 0, &col_dt, 1, rk as u32 - 1, 2);
            }
        }
        for (rk, side, req) in reqs {
            let (buf, _) = world.wait(rk as u32, req);
            let ghost_col = if side == 'L' { 0 } else { width - 1 };
            for r in 0..N {
                let at = (r * width) * 8;
                let v = f64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
                grids[rk][idx(r, ghost_col, width)] = v;
            }
        }
        // Relax (interior of the global grid only).
        for (rk, g) in grids.iter_mut().enumerate() {
            let old = g.clone();
            for r in 1..N - 1 {
                for c in 1..=cols {
                    let gc = rk * cols + (c - 1);
                    if gc == 0 || gc == N - 1 {
                        continue;
                    }
                    g[idx(r, c, width)] = 0.25
                        * (old[idx(r - 1, c, width)]
                            + old[idx(r + 1, c, width)]
                            + old[idx(r, c - 1, width)]
                            + old[idx(r, c + 1, width)]);
                }
            }
            world.compute(rk as u32, ncmt::sim::us(5));
        }
    }

    // Verify against the single-rank reference.
    let expect = reference();
    let mut max_err = 0.0f64;
    for (rk, g) in grids.iter().enumerate() {
        for r in 0..N {
            for c in 0..cols {
                let gc = rk * cols + c;
                max_err = max_err.max((g[idx(r, c + 1, width)] - expect[idx(r, gc, N)]).abs());
            }
        }
    }
    println!("2D Jacobi over {RANKS} simulated ranks, {ITERS} iterations");
    println!("max |err| vs single-rank reference: {max_err:.3e}");
    assert!(max_err < 1e-12, "distributed stencil must match");
    let t: Vec<f64> = (0..RANKS)
        .map(|r| world.time(r as u32) as f64 / 1e6)
        .collect();
    println!("rank clocks (us): {t:?}");
    println!("halo receives went through the simulated sPIN NIC (offloaded column datatypes) ✓");
}
