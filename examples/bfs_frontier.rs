//! Distributed BFS frontier exchange — the paper's motivating irregular
//! workload ("in a distributed graph traversal such as BFS, the
//! algorithm sends data to all vertices that are neighbors of vertices
//! in the current frontier on remote nodes — here both the source and
//! the target data elements are scattered at different locations in
//! memory depending on the graph structure").
//!
//! This example runs a real BFS over a synthetic power-law-ish graph
//! partitioned across two simulated ranks. Each level's remote updates
//! become an `indexed_block` datatype over the neighbor vertex slots;
//! the receive is simulated through the sPIN NIC and compared against
//! host-based unpacking, and the BFS result is verified against a
//! single-node reference.
//!
//! ```sh
//! cargo run --release --example bfs_frontier
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ncmt::core::runner::{Experiment, Strategy};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::spin::params::NicParams;

/// Vertex payload exchanged per frontier update: distance, parent and a
/// 14-double property vector (weights/labels), as BFS-based analytics
/// kernels carry.
const SLOT_DOUBLES: u32 = 16;

fn build_graph(n: usize, avg_deg: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = vec![Vec::new(); n];
    for u in 0..n {
        // preferential-ish: bias edges toward low vertex ids
        for _ in 0..avg_deg {
            let r: f64 = rng.random();
            let v = ((r * r) * n as f64) as usize % n;
            if v != u {
                adj[u].push(v as u32);
                adj[v].push(u as u32);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

fn reference_bfs(adj: &[Vec<u32>], root: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; adj.len()];
    let mut q = std::collections::VecDeque::new();
    dist[root as usize] = 0;
    q.push_back(root);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u as usize] {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

fn main() {
    let n = 4096usize;
    let adj = build_graph(n, 4, 42);
    let reference = reference_bfs(&adj, 0);

    // Two ranks: rank 0 owns [0, n/2), rank 1 owns [n/2, n).
    let half = n / 2;
    let owner = |v: usize| usize::from(v >= half);
    let mut dist = vec![u32::MAX; n];
    dist[0] = 0;
    let mut frontier: Vec<u32> = vec![0];
    let mut level = 0u32;

    let params = NicParams::with_hpus(16);
    let mut total_offload_ns = 0f64;
    let mut total_host_ns = 0f64;
    let mut exchanges = 0usize;

    while !frontier.is_empty() {
        // Local expansion + collect remote updates per destination rank.
        let mut next: Vec<u32> = Vec::new();
        let mut remote: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        for &u in &frontier {
            for &v in &adj[u as usize] {
                if dist[v as usize] != u32::MAX {
                    continue;
                }
                if owner(v as usize) == owner(u as usize) {
                    dist[v as usize] = level + 1;
                    next.push(v);
                } else {
                    remote[owner(v as usize)].push(v);
                }
            }
        }
        // Exchange: the receiver scatters updates straight into its
        // vertex array — an indexed_block datatype over the target slots.
        for (rank, targets) in remote.iter().enumerate() {
            let mut t: Vec<u32> = targets.clone();
            t.sort_unstable();
            t.dedup();
            if t.is_empty() {
                continue;
            }
            let displs: Vec<i64> = t.iter().map(|&v| v as i64 * SLOT_DOUBLES as i64).collect();
            let dt = Datatype::indexed_block(SLOT_DOUBLES, &displs, &elem::double())
                .expect("sorted unique displacements");
            let mut exp = Experiment::new(dt, 1, params.clone());
            exp.verify = exchanges == 0; // byte-verify the first exchange
            let r = exp.run(Strategy::RwCp);
            let h = exp.run_host();
            total_offload_ns += r.processing_time() as f64 / 1e3;
            total_host_ns += h.processing_time as f64 / 1e3;
            exchanges += 1;
            // Apply the updates (the simulated receive carried them).
            for &v in &t {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = level + 1;
                    next.push(v);
                }
            }
            let _ = rank;
        }
        frontier = next;
        level += 1;
    }

    assert_eq!(dist, reference, "distributed BFS must match the reference");
    let reached = dist.iter().filter(|&&d| d != u32::MAX).count();
    println!("BFS over {n} vertices: {reached} reached in {level} levels ✓ (matches reference)");
    let speedup = total_host_ns / total_offload_ns;
    println!(
        "{exchanges} frontier exchanges: offloaded receive {:.1} us vs host unpack {:.1} us ({:.2}x)",
        total_offload_ns / 1e3,
        total_host_ns / 1e3,
        speedup
    );
    if speedup >= 1.0 {
        println!("(irregular scatter: the NIC writes each vertex slot directly — zero-copy)");
    } else {
        println!(
            "(tiny frontier messages sit below the Fig. 8 crossover — offload does not pay here)"
        );
    }
}
