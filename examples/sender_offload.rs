//! Sender-side offload (paper Sec. 3.1 / Fig. 4): sending a
//! non-contiguous buffer by (1) CPU pack + send, (2) streaming puts
//! (`PtlSPutStart`/`PtlSPutStream`), and (3) outbound sPIN
//! (`PtlProcessPut`), including the streaming-put packetization
//! semantics (many regions, one message).
//!
//! ```sh
//! cargo run --release --example sender_offload
//! ```

use ncmt::ddt::flatten::flatten;
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::portals::commands::{Region, StreamingPut};
use ncmt::spin::outbound::{pack_and_send, process_put_send, streaming_put_send, SendWorkload};
use ncmt::spin::params::NicParams;

fn main() {
    let params = NicParams::default();
    // A 4 MiB strided send: 16384 blocks of 256 B.
    let dt = Datatype::vector(16384, 32, 64, &elem::double());
    let iov = flatten(&dt, 1);
    println!(
        "send datatype: {} — {} regions, {} KiB",
        dt.signature(),
        iov.entries.len(),
        iov.total_bytes() / 1024
    );

    // Streaming-put mechanics: feed the first few regions and watch the
    // NIC emit packets of ONE message as payloads fill.
    let mut sp = StreamingPut::start(
        1,
        0xBEEF,
        params.payload_size,
        Region {
            offset: iov.entries[0].offset as u64,
            len: iov.entries[0].len,
        },
    );
    let mut emitted = 0usize;
    for (i, e) in iov.entries.iter().enumerate().skip(1) {
        sp.stream(
            Region {
                offset: e.offset as u64,
                len: e.len,
            },
            i == iov.entries.len() - 1,
        );
        emitted += sp.drain_ready_packets().len();
    }
    println!(
        "streaming put: {} regions became {} packets of one message (msg id {})",
        iov.entries.len(),
        emitted,
        sp.msg_id
    );

    // Timing comparison of the three strategies.
    let w = SendWorkload {
        msg_bytes: iov.total_bytes(),
        regions: iov.entries.len() as u64,
        cpu_pack_per_region: ncmt::sim::ns(60),
        cpu_stream_per_region: ncmt::sim::ns(40),
        nic_gather_per_region: ncmt::sim::ns(25),
    };
    println!(
        "\n{:<16} {:>14} {:>14}",
        "strategy", "inject (us)", "CPU busy (us)"
    );
    for (name, r) in [
        ("pack + send", pack_and_send(&params, &w)),
        ("streaming puts", streaming_put_send(&params, &w)),
        ("outbound sPIN", process_put_send(&params, &w)),
    ] {
        println!(
            "{:<16} {:>14.1} {:>14.1}",
            name,
            r.inject_time as f64 / 1e6,
            r.cpu_busy as f64 / 1e6
        );
    }
    println!("\noutbound sPIN leaves the CPU free: only the control-plane PtlProcessPut remains.");
}
