//! Multi-tenant NIC: several applications' messages arrive concurrently
//! and share the link, the HPUs and the DMA engine. Shows per-message
//! completion times and the slowdown versus running alone.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use ncmt::core::runner::Strategy;
use ncmt::ddt::pack::{buffer_span, pack};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::spin::multi::{run_concurrent, MessageSpec};
use ncmt::spin::params::NicParams;
use ncmt::telemetry::Telemetry;

fn make_spec(dt: &Datatype, strategy: Strategy, params: &NicParams, start_us: u64) -> MessageSpec {
    let (origin, span) = buffer_span(dt, 1);
    let src: Vec<u8> = (0..span as usize).map(|i| (i % 251) as u8).collect();
    let packed = pack(dt, 1, &src, origin).expect("packable");
    MessageSpec {
        packed: packed.into(),
        proc: strategy.build(dt, 1, params.clone(), 0.2, Telemetry::disabled()),
        host_origin: origin,
        host_span: span,
        start_time: ncmt::sim::us(start_us),
    }
}

fn main() {
    let params = NicParams::with_hpus(16);

    // Three tenants with different datatypes and strategies:
    //  A: halo exchange (vector, specialized handler)
    //  B: particle exchange (irregular index_block, RW-CP)
    //  C: matrix transpose stripe (large blocks, RW-CP)
    let halo = Datatype::vector(4096, 16, 32, &elem::double());
    let displs: Vec<i64> = (0..8192).map(|i| i * 5 + (i * i) % 3).collect();
    let particles = Datatype::indexed_block(3, &displs, &elem::double()).expect("valid");
    let transpose = Datatype::vector(256, 256, 512, &elem::complex_double());

    let tenants: [(&str, &Datatype, Strategy); 3] = [
        ("halo/specialized", &halo, Strategy::Specialized),
        ("particles/RW-CP", &particles, Strategy::RwCp),
        ("transpose/RW-CP", &transpose, Strategy::RwCp),
    ];

    // Alone: each message with the NIC to itself.
    let mut alone_us = Vec::new();
    for (_, dt, s) in &tenants {
        let r = run_concurrent(vec![make_spec(dt, *s, &params, 0)], &params);
        alone_us.push(r[0].processing_time() as f64 / 1e6);
    }

    // Together: all three start at t = 0.
    let specs = tenants
        .iter()
        .map(|(_, dt, s)| make_spec(dt, *s, &params, 0))
        .collect();
    let together = run_concurrent(specs, &params);

    println!(
        "{:<20} {:>12} {:>14} {:>10}",
        "tenant", "alone (us)", "shared (us)", "slowdown"
    );
    for (i, (name, dt, _)) in tenants.iter().enumerate() {
        let shared = together[i].processing_time() as f64 / 1e6;
        println!(
            "{:<20} {:>12.1} {:>14.1} {:>9.2}x",
            name,
            alone_us[i],
            shared,
            shared / alone_us[i]
        );
        // Verify every tenant's bytes landed intact.
        let (origin, span) = buffer_span(dt, 1);
        let src: Vec<u8> = (0..span as usize).map(|i| (i % 251) as u8).collect();
        let packed = pack(dt, 1, &src, origin).expect("packable");
        let mut expect = vec![0u8; span as usize];
        ncmt::ddt::pack::unpack(dt, 1, &packed, &mut expect, origin).expect("unpackable");
        assert_eq!(together[i].host_buf, expect, "tenant {name} corrupted");
    }
    println!("\nall receive buffers byte-verified ✓ (shared link + HPUs + DMA engine)");
}
