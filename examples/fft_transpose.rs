//! Zero-copy FFT matrix transpose (the paper's Sec. 5.4 application):
//! a 2D FFT where the transpose between the two 1D-FFT passes is
//! expressed as an MPI datatype and the unpack is offloaded to the NIC.
//!
//! This example actually computes a 2D FFT of a small matrix, moving
//! the transposed data through the simulated NIC with the RW-CP
//! strategy and verifying the numerical result against a direct 2D FFT.
//!
//! ```sh
//! cargo run --release --example fft_transpose
//! ```

use ncmt::core::runner::{Experiment, Strategy};
use ncmt::ddt::pack::{buffer_span, pack};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::loggopsim::fft2d::{strong_scaling, Fft2dConfig};
use ncmt::spin::params::NicParams;
use ncmt::workloads::fft::{fft_in_place, C64};

fn main() {
    let n = 64usize; // matrix dimension (power of two)

    // --- numerical part: row FFTs, transpose via DDT, row FFTs again ---
    let mut m: Vec<C64> = (0..n * n)
        .map(|i| C64::new((i as f64 * 0.013).sin(), (i as f64 * 0.007).cos()))
        .collect();

    // Reference: direct 2D FFT (rows then columns, in place).
    let mut reference = m.clone();
    for r in 0..n {
        fft_in_place(&mut reference[r * n..(r + 1) * n], false);
    }
    let mut col = vec![C64::zero(); n];
    for c in 0..n {
        for r in 0..n {
            col[r] = reference[r * n + c];
        }
        fft_in_place(&mut col, false);
        for r in 0..n {
            reference[r * n + c] = col[r];
        }
    }

    // Zero-copy variant: first pass on rows...
    for r in 0..n {
        fft_in_place(&mut m[r * n..(r + 1) * n], false);
    }
    // ...then the transpose is expressed as a receive datatype: a
    // column type (vector(n, 1, n)) resized to one-element extent so
    // that `count = n` copies land in consecutive columns — the
    // Hoefler/Gottlieb zero-copy transpose construction.
    let column = Datatype::vector(n as u32, 1, n as i64, &elem::complex_double());
    let recv_dt = Datatype::resized(0, 16, &column);
    let send_bytes: Vec<u8> = m
        .iter()
        .flat_map(|c| c.re.to_le_bytes().into_iter().chain(c.im.to_le_bytes()))
        .collect();
    let (origin, span) = buffer_span(&recv_dt, n as u32);
    assert_eq!(origin, 0);
    // Each "rank" here is one column; pack is the identity (the send
    // side streams rows), the receive datatype scatters into columns.
    let packed = pack(
        &Datatype::contiguous((n * n) as u32, &elem::complex_double()),
        1,
        &send_bytes,
        0,
    )
    .expect("contiguous pack");
    let mut transposed_bytes = vec![0u8; span as usize];
    ncmt::ddt::pack::unpack(&recv_dt, n as u32, &packed, &mut transposed_bytes, 0)
        .expect("transpose unpack");
    let mut t: Vec<C64> = transposed_bytes
        .chunks_exact(16)
        .map(|b| {
            C64::new(
                f64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
                f64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            )
        })
        .collect();
    // Second pass on the (now transposed) rows = original columns.
    for r in 0..n {
        fft_in_place(&mut t[r * n..(r + 1) * n], false);
    }
    // Compare against the reference (reference is in row-major of the
    // untransposed layout; t is its transpose).
    let mut max_err = 0.0f64;
    for r in 0..n {
        for c in 0..n {
            let a = t[c * n + r];
            let b = reference[r * n + c];
            max_err = max_err.max((a.re - b.re).abs().max((a.im - b.im).abs()));
        }
    }
    println!("2D FFT via DDT transpose: max |err| vs direct = {max_err:.3e}");
    assert!(max_err < 1e-6, "numerical mismatch");

    // --- performance part: how long does the NIC take to do that
    // transpose-unpack, vs the host? ---
    let big = 1024u32;
    let dt = Datatype::vector(big, 64, big as i64, &elem::complex_double());
    let exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
    let rwcp = exp.run(Strategy::RwCp);
    let host = exp.run_host();
    println!(
        "transpose receive ({} KiB): RW-CP {:.1} us vs host {:.1} us ({:.1}x)",
        rwcp.msg_bytes / 1024,
        rwcp.processing_time() as f64 / 1e6,
        host.processing_time as f64 / 1e6,
        host.processing_time as f64 / rwcp.processing_time() as f64
    );

    // --- application scale: the Fig. 19 strong-scaling study ---
    println!("\nFFT2D strong scaling (n = 20480):");
    println!(
        "{:<8} {:>10} {:>10} {:>9}",
        "nodes", "host ms", "RW-CP ms", "speedup"
    );
    for (p, host, rwcp, s) in strong_scaling(&Fft2dConfig::default(), &[64, 128, 256]) {
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>8.1}%",
            p,
            host.runtime as f64 / 1e9,
            rwcp.runtime as f64 / 1e9,
            s
        );
    }
}
