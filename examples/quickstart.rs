//! Quickstart: offload a strided receive to the simulated sPIN NIC and
//! compare it against host-based unpacking and the Portals 4 iovec
//! baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ncmt::core::runner::{Experiment, Strategy};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::spin::params::NicParams;

fn main() {
    // The canonical non-contiguous transfer: a column block of a
    // row-major matrix — 4096 blocks of 32 doubles, stride 256 doubles
    // (a 1 MiB message of 256 B blocks).
    let dt = Datatype::vector(4096, 32, 256, &elem::double());
    println!("datatype    : {}", dt.signature());
    println!(
        "message     : {} KiB, {} contiguous regions",
        dt.size / 1024,
        dt.leaf_blocks
    );

    let exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
    println!("gamma       : {:.1} regions/packet\n", exp.gamma());

    println!("{:<14} {:>12} {:>12}", "method", "time (us)", "Gbit/s");
    for s in Strategy::ALL {
        let r = exp.run(s); // also verifies the receive buffer bytes
        println!(
            "{:<14} {:>12.1} {:>12.1}",
            s.label(),
            r.processing_time() as f64 / 1e6,
            r.throughput_gbit()
        );
    }
    let host = exp.run_host();
    println!(
        "{:<14} {:>12.1} {:>12.1}",
        "Host unpack",
        host.processing_time as f64 / 1e6,
        host.throughput_gbit()
    );
    let iovec = exp.run_iovec();
    println!(
        "{:<14} {:>12.1} {:>12.1}",
        "Portals iovec",
        iovec.processing_time as f64 / 1e6,
        iovec.throughput_gbit()
    );

    let best = exp.run(Strategy::RwCp);
    println!(
        "\nRW-CP offload is {:.1}x faster than host-based unpacking.",
        host.processing_time as f64 / best.processing_time() as f64
    );
}
