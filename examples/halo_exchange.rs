//! Halo exchange: the NAS-LU communication pattern from the paper's
//! motivation (Fig. 3) — faces of a 4D array whose first dimension holds
//! 5 doubles — received through the MPI-integration layer
//! (`OffloadManager`), demonstrating commit-time strategy selection,
//! NIC-memory admission, and datatype reuse across iterations.
//!
//! ```sh
//! cargo run --release --example halo_exchange
//! ```

use ncmt::core::api::{OffloadManager, PostOutcome, TypeAttr};
use ncmt::core::runner::Experiment;
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::spin::params::NicParams;

fn main() {
    let params = NicParams::with_hpus(16);
    let mut mgr = OffloadManager::new(params.clone());

    // NAS-LU class-B-ish face: nx = nz = 102, 5 doubles per point,
    // stride = 5 * (nx + 2) doubles.
    let nx = 102u32;
    let face = Datatype::vector(nx * nx, 5, (5 * (nx + 2)) as i64, &elem::double());
    println!("halo face: {} ({} KiB)", face.signature(), face.size / 1024);

    // The user marks the halo type as high priority: it is reused every
    // iteration and should survive NIC-memory pressure.
    let committed = mgr.commit(
        &face,
        TypeAttr {
            priority: 5,
            ..Default::default()
        },
    );
    println!("commit chose: {:?}", committed.strategy);

    let iterations = 5;
    let mut total_offloaded = 0u64;
    let mut total_host = 0u64;
    for it in 0..iterations {
        match mgr.post_receive(&committed, 1) {
            PostOutcome::Offloaded(strategy) => {
                let mut exp = Experiment::new(face.clone(), 1, params.clone());
                exp.verify = it == 0; // byte-verify the first iteration
                let r = exp.run(strategy);
                total_offloaded += r.processing_time();
                let h = exp.run_host();
                total_host += h.processing_time;
                println!(
                    "iter {it}: offloaded ({}) {:.1} us vs host {:.1} us",
                    r.strategy,
                    r.processing_time() as f64 / 1e6,
                    h.processing_time as f64 / 1e6
                );
            }
            PostOutcome::FallbackHost => {
                println!("iter {it}: fell back to host unpack");
            }
        }
    }
    println!(
        "\nreuse hits: {} (DDT state stayed NIC-resident; checkpoint cost paid once)",
        mgr.reuse_hits
    );
    println!(
        "total: offloaded {:.2} ms vs host {:.2} ms ({:.1}x)",
        total_offloaded as f64 / 1e9,
        total_host as f64 / 1e9,
        total_host as f64 / total_offloaded as f64
    );
}
