//! Datatype explorer: build an assortment of derived datatypes and show
//! everything the offload layer derives from them — constructor tree,
//! normalized shape, γ, flattened region count, NIC descriptor size and
//! the commit-time strategy decision.
//!
//! ```sh
//! cargo run --release --example datatype_explorer
//! ```

use ncmt::core::api::{OffloadManager, TypeAttr};
use ncmt::ddt::darray::{darray, Distribution};
use ncmt::ddt::dataloop::compile;
use ncmt::ddt::display::{dump, typemap_equal};
use ncmt::ddt::flatten::flatten;
use ncmt::ddt::normalize::{classify, normalize};
use ncmt::ddt::types::{elem, ArrayOrder, Datatype, DatatypeExt};
use ncmt::spin::params::NicParams;

fn inspect(name: &str, dt: &Datatype, mgr: &mut OffloadManager) {
    println!("== {name} ==");
    print!("{}", dump(dt));
    let dl = compile(dt, 1);
    let iov = flatten(dt, 1);
    println!(
        "size {} B, {} merged regions, γ(2KiB pkts) = {:.1}, descriptor {} B",
        dt.size,
        iov.entries.len(),
        dl.blocks as f64 / dl.size.div_ceil(2048).max(1) as f64,
        dl.nic_descr_bytes()
    );
    println!("shape: {:?}", classify(dt));
    let committed = mgr.commit(dt, TypeAttr::default());
    println!("commit decision: {:?}", committed.strategy);
    // Normalization preserves the typemap.
    assert!(typemap_equal(dt, &normalize(dt)));
    println!();
}

fn main() {
    let mut mgr = OffloadManager::new(NicParams::with_hpus(16));

    // 1. A matrix column (the classic).
    let column = Datatype::vector(256, 1, 256, &elem::double());
    inspect("matrix column (vector)", &column, &mut mgr);

    // 2. A nested MILC-style halo.
    let inner = Datatype::vector(64, 18, 18 * 8, &elem::double());
    let milc = Datatype::hvector(8, 1, 1 << 20, &inner);
    inspect("MILC halo (vector of vectors)", &milc, &mut mgr);

    // 3. An irregular particle exchange.
    let displs: Vec<i64> = (0..1000).map(|i| i * 9 + (i * i) % 5).collect();
    let particles = Datatype::indexed_block(4, &displs, &elem::double()).unwrap();
    inspect("particle exchange (indexed_block)", &particles, &mut mgr);

    // 4. A 3D face as a subarray.
    let face = Datatype::subarray(
        &[64, 64, 64],
        &[64, 64, 2],
        &[0, 0, 62],
        ArrayOrder::C,
        &elem::float(),
    )
    .unwrap();
    inspect("3D x-face (subarray)", &face, &mut mgr);

    // 5. A block-cyclic distributed array share.
    let share = darray(
        &[128, 128],
        &[Distribution::Block, Distribution::Cyclic],
        &[4, 2],
        &[1, 0],
        ArrayOrder::C,
        &elem::double(),
    )
    .unwrap();
    inspect("darray share (block x cyclic)", &share, &mut mgr);

    // 6. A struct of two fields.
    let st = Datatype::struct_(&[3, 5], &[0, 256], &[elem::double(), elem::int()]).unwrap();
    inspect("struct (3 doubles + 5 ints)", &st, &mut mgr);

    println!("(all normalizations verified typemap-equal)");
}
