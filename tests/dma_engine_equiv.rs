//! The eager (event-free) DMA engine must be observationally identical
//! to the event-driven one: same completion time, same landed bytes,
//! same write/byte counters and the same `dma_max_queue` high-water
//! mark. The eager engine runs whenever telemetry is off and no DMA
//! occupancy time series was requested — i.e. in every benchmark and
//! figure hot loop — so this equivalence is what keeps the perf fast
//! path honest against the reference pipeline.
//!
//! The reference runs are forced onto the event-driven engine two ways:
//! with a live (ring) telemetry sink, and with telemetry off but the
//! occupancy series on. Both must agree with the eager run.

use ncmt::core::runner::{Experiment, Strategy};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::sim::FaultSpec;
use ncmt::spin::nic::RunReport;
use ncmt::spin::params::NicParams;
use ncmt::telemetry::Telemetry;

fn assert_equiv(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.t_complete, b.t_complete, "{what}: t_complete");
    assert_eq!(a.t_first_byte, b.t_first_byte, "{what}: t_first_byte");
    assert_eq!(a.dma_writes, b.dma_writes, "{what}: dma_writes");
    assert_eq!(a.dma_bytes, b.dma_bytes, "{what}: dma_bytes");
    assert_eq!(a.dma_max_queue, b.dma_max_queue, "{what}: dma_max_queue");
    assert_eq!(*a.host_buf, *b.host_buf, "{what}: host_buf");
    assert_eq!(
        a.nic_mem_hwm_bytes, b.nic_mem_hwm_bytes,
        "{what}: nic_mem_hwm"
    );
}

/// Workloads spanning γ regimes: fine blocks (DMA queue backlog), wide
/// blocks (service-bound) and a multi-count message.
fn workloads() -> Vec<(Datatype, u32)> {
    vec![
        (Datatype::vector(512, 16, 32, &elem::double()), 1),
        (Datatype::vector(64, 256, 512, &elem::double()), 1),
        (Datatype::vector(128, 4, 8, &elem::double()), 3),
    ]
}

#[test]
fn eager_dma_matches_event_driven_engine() {
    for (dt, count) in workloads() {
        for s in Strategy::ALL {
            let mut exp = Experiment::new(dt.clone(), count, NicParams::with_hpus(16));
            exp.verify = false;
            let eager = exp.run(s); // telemetry off, no history: eager engine

            let mut hist = exp.clone();
            hist.record_dma_history = true; // event-driven, telemetry still off
            let evented = hist.run(s);
            assert_equiv(&eager, &evented, &format!("{} history-run", s.label()));
            assert!(
                !evented.dma_history.is_empty(),
                "reference run must have taken the event-driven engine"
            );

            let mut tel = exp.clone();
            let (sink, _ring) = Telemetry::ring(1 << 14);
            tel.telemetry = sink; // event-driven via the telemetry gate
            let traced = tel.run(s);
            assert_equiv(&eager, &traced, &format!("{} traced-run", s.label()));
        }
    }
}

#[test]
fn eager_dma_matches_event_driven_engine_under_faults() {
    // The reliable-delivery path re-runs handlers for retransmitted
    // packets; DMA arrivals stay FIFO at nondecreasing times, which is
    // the property the eager schedule rests on.
    let dt = Datatype::vector(256, 8, 16, &elem::double());
    let mut exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
    exp.verify = true;
    exp.faults = FaultSpec {
        drop: 0.08,
        ..FaultSpec::inert()
    };
    for s in Strategy::ALL {
        let eager = exp.run(s);
        let mut hist = exp.clone();
        hist.record_dma_history = true;
        let evented = hist.run(s);
        assert_equiv(&eager, &evented, &format!("{} faulty", s.label()));
    }
}
