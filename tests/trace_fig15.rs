//! The trace-driven Fig. 15 harness must reproduce the DMA-occupancy
//! series of the pipeline's bespoke `dma_history` probe exactly, and
//! its rendered table must match the committed golden output.
//!
//! Regenerate the golden with
//! `BLESS_GOLDEN=1 cargo test --release --test trace_fig15`.

use ncmt::core::runner::{Experiment, Strategy};
use ncmt::core::strategies::{GeneralKind, GeneralProcessor};
use ncmt::ddt::pack::{buffer_span, pack};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::spin::handler::{MessageProcessor, PacketCtx};
use ncmt::spin::params::NicParams;
use ncmt::telemetry::{aggregate, export, Telemetry};

use nca_bench::figures::fig15;

/// γ=16 vector workload, small enough for a debug-mode test run.
fn workload() -> (Datatype, u32) {
    // 128 B blocks, 64 KiB total: 512 blocks of 16 doubles.
    (Datatype::vector(512, 16, 32, &elem::double()), 1)
}

#[test]
fn trace_gauge_series_equals_bespoke_dma_history() {
    for s in [
        Strategy::RwCp,
        Strategy::RoCp,
        Strategy::HpuLocal,
        Strategy::Specialized,
    ] {
        let (dt, count) = workload();
        let mut exp = Experiment::new(dt, count, NicParams::with_hpus(16));
        exp.record_dma_history = true;
        let (tel, sink) = Telemetry::ring(1 << 20);
        exp.telemetry = tel;
        let r = exp.run(s);
        let traced: Vec<(u64, usize)> =
            aggregate::gauge_series(&sink.events(), "spin", "dma_queue")
                .into_iter()
                .map(|(t, v)| (t, v as usize))
                .collect();
        assert!(
            !traced.is_empty(),
            "{}: trace must contain dma_queue samples",
            s.label()
        );
        assert_eq!(
            traced,
            r.dma_history,
            "{}: trace-driven series must equal the bespoke probe sample for sample",
            s.label()
        );
    }
}

#[test]
fn trace_contains_the_advertised_event_families() {
    let (dt, count) = workload();
    let mut exp = Experiment::new(dt, count, NicParams::with_hpus(16));
    let (tel, sink) = Telemetry::ring(1 << 20);
    exp.telemetry = tel.scoped("RW-CP");
    exp.run(Strategy::RwCp);
    let evs = sink.events();
    let roll = aggregate::rollup(&evs);
    // HPU handler spans with phase timings, sim-loop counters, DMA
    // queue samples, and checkpoint bookkeeping all present.
    assert!(roll["spin"].spans.contains_key("handler"));
    assert!(roll["spin"].counters["packets_arrived"] > 0);
    assert!(roll["sim"].counters["events_dispatched"] > 0);
    assert!(roll["core"].counters["checkpoints_created"] > 0);
    assert!(roll["core"].values.contains_key("t_processing"));
    assert!(!aggregate::gauge_series(&evs, "spin", "dma_queue").is_empty());

    // And the Perfetto export carries them as spans/counters/instants.
    let json = export::chrome_trace_json(&evs);
    assert!(json.contains(r#""name":"RW-CP/spin""#));
    assert!(
        json.contains(r#""ph":"X","pid":"#),
        "handler spans exported"
    );
    assert!(
        json.contains(r#""name":"dma_queue""#),
        "dma counter track exported"
    );
    assert!(json.contains(r#""ph":"i""#), "instant events exported");
}

#[test]
fn rwcp_revert_is_traced() {
    // Drive the RW-CP processor directly with an out-of-order pair on
    // one vHPU: the second packet rewinds past the progressed
    // checkpoint and must emit revert telemetry.
    let (dt, count) = workload();
    let params = NicParams::with_hpus(16);
    let (origin, span) = buffer_span(&dt, count);
    let src: Vec<u8> = (0..span as usize).map(|i| (i % 251) as u8).collect();
    let packed: ncmt::sim::WireBuf = pack(&dt, count, &src, origin).unwrap().into();
    let ps = params.payload_size as usize;

    let (tel, sink) = Telemetry::ring(256);
    let mut p =
        GeneralProcessor::new(GeneralKind::RwCp, &dt, count, params, 0.2).with_telemetry(tel);
    let mut later = PacketCtx {
        payload: &packed.view(ps, ps),
        stream_offset: ps as u64,
        seq: 1,
        npkt: 2,
        vhpu: 0,
        now: 10,
        direct: None,
    };
    p.on_payload(&mut later);
    let mut earlier = PacketCtx {
        payload: &packed.view(0, ps),
        stream_offset: 0,
        seq: 0,
        npkt: 2,
        vhpu: 0,
        now: 20,
        direct: None,
    };
    p.on_payload(&mut earlier);
    assert_eq!(p.reverts, 1);
    let roll = aggregate::rollup(&sink.events());
    assert_eq!(roll["core"].counters["checkpoint_reverts"], 1);
    assert_eq!(roll["core"].instants["checkpoint_revert"], 1);
}

#[test]
fn dma_channel_tracks_carry_disjoint_busy_spans() {
    let (dt, count) = workload();
    let mut exp = Experiment::new(dt, count, NicParams::with_hpus(16));
    let (tel, sink) = Telemetry::ring(1 << 20);
    exp.telemetry = tel;
    let r = exp.run(Strategy::RwCp);
    let evs = sink.events();

    // Every DMA write is served by exactly one channel busy span.
    let mut per_chan: std::collections::BTreeMap<u64, Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    for ev in &evs {
        if ev.component == "spin" && ev.name == "dma_chan" {
            if let ncmt::telemetry::EventKind::Span { end } = ev.kind {
                per_chan.entry(ev.track).or_default().push((ev.time, end));
            }
        }
    }
    let total: usize = per_chan.values().map(Vec::len).sum();
    assert_eq!(
        total as u64, r.dma_writes,
        "one dma_chan span per DMA write"
    );
    // A channel serves one write at a time: spans on its track are
    // non-overlapping in dispatch order.
    for (chan, spans) in &per_chan {
        let mut sorted = spans.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "channel {chan}: spans {:?} and {:?} overlap",
                w[0],
                w[1]
            );
        }
    }
    // And the figure helper sees the same channel-0 spans.
    let (n0, busy0) = fig15::channel_busy(&evs, 0);
    assert_eq!(n0, per_chan.get(&0).map_or(0, Vec::len));
    assert!(busy0 > 0);
}

#[test]
fn fig15_rows_match_golden() {
    let actual = fig15::rows(true).join("\n") + "\n";
    let path = format!(
        "{}/tests/golden/fig15_dma_timeline.tsv",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path}: {e}"));
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "fig15 drifted from its golden output; regenerate {path} if intended"
    );
}
