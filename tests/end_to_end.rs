//! Cross-crate integration tests: real application datatypes received
//! end-to-end through the simulated NIC under every strategy, with
//! byte-exact verification and timing invariants.

use ncmt::core::runner::{Experiment, Strategy};
use ncmt::ddt::dataloop::compile;
use ncmt::spin::params::NicParams;
use ncmt::workloads::apps;

fn small_workloads() -> Vec<ncmt::workloads::AppWorkload> {
    apps::all_workloads()
        .into_iter()
        .filter(|w| w.msg_bytes() <= 192 << 10)
        .collect()
}

#[test]
fn every_strategy_unpacks_every_small_app_datatype() {
    let ws = small_workloads();
    assert!(
        ws.len() >= 10,
        "need a representative sample, got {}",
        ws.len()
    );
    for w in &ws {
        let mut exp = Experiment::new(w.dt.clone(), w.count, NicParams::with_hpus(16));
        exp.verify = true; // Experiment::run panics on buffer mismatch
        for s in Strategy::ALL {
            let r = exp.run(s);
            assert!(
                r.t_complete > r.t_first_byte,
                "{} / {}: time must advance",
                w.label(),
                s.label()
            );
            // All message bytes must have crossed the PCIe bus.
            assert_eq!(r.dma_bytes, w.msg_bytes(), "{} / {}", w.label(), s.label());
        }
    }
}

#[test]
fn out_of_order_delivery_is_correct_for_all_strategies() {
    for w in small_workloads().into_iter().take(6) {
        for seed in [5u64, 23] {
            let mut exp = Experiment::new(w.dt.clone(), w.count, NicParams::with_hpus(8));
            exp.out_of_order = Some(seed);
            exp.verify = true;
            for s in Strategy::ALL {
                exp.run(s); // panics on corruption
            }
        }
    }
}

#[test]
fn offload_beats_host_on_coarse_grained_types() {
    // For block sizes well above the Fig. 8 crossover, every offloaded
    // strategy except possibly RO-CP/HPU-local must beat the host.
    use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
    let dt = Datatype::vector(512, 256, 512, &elem::double()); // 1 MiB, 2 KiB blocks
    let exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
    let host = exp.run_host().processing_time;
    for s in [Strategy::Specialized, Strategy::RwCp] {
        let t = exp.run(s).processing_time();
        assert!(t < host, "{} ({t}) must beat host ({host})", s.label());
    }
}

#[test]
fn host_beats_offload_on_pathological_tiny_blocks() {
    // The Fig. 8 crossover: 4-byte blocks make offload lose.
    use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
    let dt = Datatype::vector(65536, 1, 2, &elem::int()); // 256 KiB of 4 B blocks
    let mut exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
    exp.verify = false;
    let host = exp.run_host().processing_time;
    let off = exp.run(Strategy::RwCp).processing_time();
    assert!(
        host < off,
        "host ({host}) must beat RW-CP ({off}) at 4 B blocks"
    );
}

#[test]
fn strategy_ordering_matches_fig8_at_moderate_gamma() {
    use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
    // γ = 16 (128 B blocks), 512 KiB message.
    let dt = Datatype::vector(4096, 16, 32, &elem::double());
    let mut exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
    exp.verify = false;
    let spec = exp.run(Strategy::Specialized).processing_time();
    let rwcp = exp.run(Strategy::RwCp).processing_time();
    let rocp = exp.run(Strategy::RoCp).processing_time();
    let hpul = exp.run(Strategy::HpuLocal).processing_time();
    assert!(spec <= rwcp, "specialized ≤ RW-CP");
    assert!(rwcp <= rocp, "RW-CP ≤ RO-CP");
    assert!(rocp <= hpul, "RO-CP ≤ HPU-local");
}

#[test]
fn simulation_is_deterministic() {
    let w = &small_workloads()[2];
    let exp = Experiment::new(w.dt.clone(), w.count, NicParams::with_hpus(16));
    let a = exp.run(Strategy::RwCp);
    let b = exp.run(Strategy::RwCp);
    assert_eq!(a.t_complete, b.t_complete);
    assert_eq!(a.dma_writes, b.dma_writes);
    assert_eq!(a.host_buf, b.host_buf);
}

#[test]
fn gamma_agrees_between_workload_and_experiment() {
    for w in small_workloads().into_iter().take(8) {
        let exp = Experiment::new(w.dt.clone(), w.count, NicParams::with_hpus(16));
        let dl = compile(&w.dt, w.count);
        assert!(dl.size > 0);
        assert!((exp.gamma() - w.gamma(2048)).abs() < 1e-9);
    }
}

#[test]
fn more_hpus_never_slow_down_general_strategies() {
    use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
    let dt = Datatype::vector(2048, 32, 64, &elem::double()); // 512 KiB
    let mut t_prev = u64::MAX;
    for hpus in [2usize, 8, 32] {
        let mut exp = Experiment::new(dt.clone(), 1, NicParams::with_hpus(hpus));
        exp.verify = false;
        let t = exp.run(Strategy::RwCp).processing_time();
        assert!(t <= t_prev, "RW-CP slower with {hpus} HPUs: {t} > {t_prev}");
        t_prev = t;
    }
}
