//! Golden-output regression tests for the pure-model figures.
//!
//! These figures are deterministic functions of the calibrated model
//! parameters; any diff against the committed goldens means a parameter
//! or model change — intended changes must regenerate the goldens
//! (`./target/release/<bin> > tests/golden/<bin>.tsv`).

use std::fmt::Write as _;

fn check(name: &str, actual: String) {
    let path = format!("{}/tests/golden/{name}.tsv", env!("CARGO_MANIFEST_DIR"));
    let expected =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path}: {e}"));
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "{name} drifted from its golden output; regenerate {path} if intended"
    );
}

#[test]
fn fig02_golden() {
    use nca_bench::figures::fig02;
    let mut out = String::new();
    let _ = writeln!(out, "# Fig. 2 — one-byte put latency (us)");
    let _ = writeln!(out, "path\tpcie\tnic\tnetwork\ttotal");
    let rows = fig02::rows();
    for r in &rows {
        let _ = writeln!(
            out,
            "{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            r.path,
            r.pcie as f64 / 1e6,
            r.nic as f64 / 1e6,
            r.network as f64 / 1e6,
            r.total() as f64 / 1e6
        );
    }
    let overhead = rows[1].total() as f64 / rows[0].total() as f64 - 1.0;
    let _ = writeln!(
        out,
        "# sPIN overhead: {:.1}% (paper: +24.4%)",
        overhead * 100.0
    );
    let _ = writeln!(
        out,
        "# simulated sPIN end-to-end: {:.3} us",
        fig02::simulated_spin_total() as f64 / 1e6
    );
    check("fig02_put_latency", out);
}

#[test]
fn fig09c_golden() {
    use nca_bench::figures::fig09c;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 9c — DMA bandwidth vs block size (line rate = 200 Gbit/s)"
    );
    let _ = writeln!(out, "block_bytes\tgbit_per_s");
    for (b, bw) in fig09c::rows() {
        let _ = writeln!(out, "{b}\t{bw:.1}");
    }
    check("fig09c_bandwidth", out);
}

#[test]
fn fig10_golden() {
    use nca_bench::figures::fig10;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 10 — RW-CP throughput on PULP vs ARM (1 MiB message)"
    );
    let _ = writeln!(out, "block_bytes\tpulp_gbit\tarm_gbit");
    for (b, p, a) in fig10::rows() {
        let _ = writeln!(out, "{b}\t{p:.1}\t{a:.1}");
    }
    check("fig10_pulp_vs_arm", out);
}

#[test]
fn fig11_golden() {
    use nca_bench::figures::fig11;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 11 — RW-CP IPC on PULP (paper medians 0.14-0.26)"
    );
    let _ = writeln!(out, "block_bytes\tipc");
    for (b, ipc) in fig11::rows() {
        let _ = writeln!(out, "{b}\t{ipc:.3}");
    }
    check("fig11_ipc", out);
}
