//! Telemetry-overhead budget check (ROADMAP): the instrumentation
//! hooks compiled into the pipeline must be effectively free when
//! telemetry is off — a disabled handle costs one branch per call
//! site. Budget: all disabled-hook invocations of a run together must
//! account for < 2% of that run's wall time.
//!
//! Measured as `events_per_run × disabled_call_cost / run_wall_time`:
//! the event count comes from a ring-recorded run of the same
//! experiment (every recorded event is one hook crossing), the
//! disabled-call cost from a hot loop over `Telemetry::disabled()`.
//!
//! Wall-clock timings in a shared-CPU container are noisy, so this is
//! `#[ignore]`d by default and NOT part of the CI wall (the budget's
//! safety margin is ~100×, but CI stays deterministic). Run it locally
//! either way:
//!
//! ```sh
//! cargo test --release --test telemetry_overhead -- --ignored
//! NCMT_BENCH_STRICT=1 cargo test --release --test telemetry_overhead
//! ```

use std::hint::black_box;
use std::time::Instant;

use ncmt::core::runner::{Experiment, Strategy};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::spin::params::NicParams;
use ncmt::telemetry::Telemetry;

/// Budget: disabled-hook time per run over run wall time.
const BUDGET: f64 = 0.02;

/// Median wall time of `reps` runs of `f` (median resists scheduler
/// hiccups better than mean or min on a shared CPU).
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn assert_within_budget() {
    let dt = Datatype::vector(512, 16, 32, &elem::double()); // 64 KiB
    let mut exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
    exp.verify = false;

    // Hook crossings per run: every ring-recorded event is one. The
    // ring is sized to hold them all (no drops), and dropped events
    // would be counted anyway.
    let (tel, sink) = Telemetry::ring(1 << 22);
    exp.telemetry = tel;
    exp.run(Strategy::RwCp);
    let events_per_run = (sink.events().len() + sink.dropped() as usize) as f64;
    assert!(events_per_run > 0.0, "instrumented run recorded no events");

    // Cost of one disabled hook crossing.
    let off = Telemetry::disabled();
    const CALLS: u64 = 4_000_000;
    let loop_secs = median_secs(5, || {
        for i in 0..CALLS {
            off.counter("spin", "budget_probe", 0, black_box(i), 1);
        }
    });
    let per_call = loop_secs / CALLS as f64;

    // Wall time of the run the hooks are embedded in.
    exp.telemetry = Telemetry::disabled();
    exp.run(Strategy::RwCp); // warm-up
    let run_secs = median_secs(15, || {
        exp.run(Strategy::RwCp);
    });

    let overhead = events_per_run * per_call / run_secs;
    eprintln!(
        "telemetry-off overhead: {:.4}% ({} hook crossings × {:.2} ns / {:.3} ms run)",
        overhead * 100.0,
        events_per_run as u64,
        per_call * 1e9,
        run_secs * 1e3
    );
    assert!(
        overhead < BUDGET,
        "disabled-telemetry overhead {:.3}% exceeds the {:.0}% budget",
        overhead * 100.0,
        BUDGET * 100.0
    );
}

/// The budget check proper. Ignored by default: container timings are
/// too noisy for a CI gate (see ROADMAP).
#[test]
#[ignore = "wall-clock measurement; noisy on shared CPUs — opt in with --ignored or NCMT_BENCH_STRICT=1"]
fn telemetry_overhead_within_budget() {
    assert_within_budget();
}

/// Opt-in gate: `NCMT_BENCH_STRICT=1 cargo test` runs the budget check
/// without needing `-- --ignored`. A no-op (green) otherwise.
#[test]
fn telemetry_overhead_within_budget_strict_opt_in() {
    if std::env::var("NCMT_BENCH_STRICT").as_deref() != Ok("1") {
        eprintln!("skipped: set NCMT_BENCH_STRICT=1 to measure the telemetry-overhead budget");
        return;
    }
    assert_within_budget();
}
