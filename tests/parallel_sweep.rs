//! Determinism wall for the parallel executor: every artifact the pool
//! produces must be identical to its serial counterpart at any worker
//! count — the contract DESIGN.md's executor section promises and the
//! CI golden gate re-checks end to end through `ncmt_cli`.

use nca_core::runner::{Experiment, Strategy};
use nca_core::sweep::{cell_ok, fault_sweep, FaultSweepSpec};
use nca_ddt::types::{elem, Datatype, DatatypeExt};
use nca_sim::{FaultSpec, Pool};
use nca_spin::params::NicParams;

fn sweep_spec(seeds: u64) -> FaultSweepSpec {
    FaultSweepSpec {
        dt: Datatype::vector(128, 8, 16, &elem::double()),
        count: 1,
        params: NicParams::with_hpus(8),
        base: FaultSpec {
            drop: 0.05,
            duplicate: 0.02,
            corrupt: 0.01,
            reorder_window: 2_000_000,
            seed: 1,
        },
        seed0: 1,
        seeds,
        scales: vec![0.0, 0.5, 1.0],
        ring_capacity: 1 << 18,
    }
}

/// The fault-sweep matrix is cell-for-cell identical (order included)
/// at worker counts 1, 3 and 4.
#[test]
fn fault_sweep_cells_identical_across_worker_counts() {
    let spec = sweep_spec(2);
    let serial = fault_sweep(&spec, &Pool::serial());
    assert_eq!(
        serial.len(),
        2 * 3 * Strategy::ALL.len(),
        "seeds × scales × strategies"
    );
    assert!(serial.iter().all(cell_ok), "reference sweep must pass");
    for jobs in [3, 4] {
        let parallel = fault_sweep(&spec, &Pool::new(jobs));
        assert_eq!(serial, parallel, "jobs = {jobs}");
    }
}

/// A strategy sweep with telemetry capture returns the same runs and
/// the same merged event stream serially and in parallel.
#[test]
fn run_all_modeled_events_identical_serial_vs_parallel() {
    let dt = Datatype::vector(128, 8, 16, &elem::double());
    let mut exp = Experiment::new(dt, 1, NicParams::with_hpus(8));
    exp.verify = false;
    let cap = Some(1 << 18);

    let serial = exp.run_all_modeled(&Pool::serial(), cap);
    let parallel = exp.run_all_modeled(&Pool::new(4), cap);

    let labels: Vec<_> = serial.runs.iter().map(|(s, _)| s.label()).collect();
    assert_eq!(
        labels,
        Strategy::ALL.map(|s| s.label()).to_vec(),
        "runs come back in Strategy::ALL order"
    );
    assert!(!serial.events.is_empty(), "capture must record events");
    for ((s1, r1), (s2, r2)) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(s1.label(), s2.label());
        assert_eq!(
            r1.report.processing_time(),
            r2.report.processing_time(),
            "{} timing must not depend on worker count",
            s1.label()
        );
        assert_eq!(r1.report.host_buf, r2.report.host_buf);
    }
    assert_eq!(serial.events, parallel.events);
    assert_eq!(serial.dropped, parallel.dropped);
}

/// Ring eviction is part of the determinism contract: when the shared
/// capacity is smaller than the event volume, the merged stream still
/// matches the serial shared-ring capture, drop count included.
#[test]
fn run_all_modeled_merge_matches_serial_under_eviction() {
    let dt = Datatype::vector(64, 4, 8, &elem::double());
    let mut exp = Experiment::new(dt, 1, NicParams::with_hpus(4));
    exp.verify = false;
    let cap = Some(256); // far below the events one run emits

    let serial = exp.run_all_modeled(&Pool::serial(), cap);
    let parallel = exp.run_all_modeled(&Pool::new(4), cap);
    assert_eq!(serial.events.len(), 256, "ring must be full");
    assert!(serial.dropped > 0, "eviction must have happened");
    assert_eq!(serial.events, parallel.events);
    assert_eq!(serial.dropped, parallel.dropped);
}
