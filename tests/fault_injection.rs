//! End-to-end fault-injection + reliable-delivery tests: every strategy
//! must produce a byte-exact receive buffer under any fault mix, the
//! schedule must be a pure function of the seed, and degraded paths
//! (retry exhaustion, NIC-memory exhaustion) must recover instead of
//! wedging.

use ncmt::core::runner::{Experiment, Strategy};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::sim::FaultSpec;
use ncmt::spin::params::NicParams;

fn small_exp() -> Experiment {
    // 512 blocks of 16 doubles, stride 32 -> 64 KiB message, 32 packets.
    let dt = Datatype::vector(512, 16, 32, &elem::double());
    Experiment::new(dt, 1, NicParams::with_hpus(16))
}

fn lossy(seed: u64) -> FaultSpec {
    FaultSpec {
        drop: 0.05,
        duplicate: 0.02,
        corrupt: 0.01,
        reorder_window: nca_sim::us(2),
        seed,
    }
}

#[test]
fn all_strategies_byte_exact_under_fault_mix() {
    for seed in [1u64, 7, 42] {
        let mut exp = small_exp();
        exp.faults = lossy(seed);
        for s in Strategy::ALL {
            // Experiment::run verifies the receive buffer internally and
            // panics on any corruption.
            let r = exp.run(s);
            assert!(
                r.rel.delivered_exactly_once,
                "{} seed {seed}: not exactly-once",
                s.label()
            );
            assert_eq!(r.rel.corrupts_injected, r.rel.corrupts_rejected);
            assert_eq!(r.rel.dups_injected, r.rel.dups_suppressed);
        }
    }
}

#[test]
fn fault_schedule_is_a_pure_function_of_the_seed() {
    let mut exp = small_exp();
    exp.faults = lossy(99);
    let a = exp.run(Strategy::RwCp);
    let b = exp.run(Strategy::RwCp);
    assert_eq!(a.rel, b.rel, "same seed must replay identically");
    assert_eq!(a.host_buf, b.host_buf);
    assert_eq!(a.t_complete, b.t_complete);
    // A different seed draws a different schedule (with these rates and
    // 32 packets the chance of identical stats is negligible).
    exp.faults = lossy(100);
    let c = exp.run(Strategy::RwCp);
    assert_ne!(
        (
            a.rel.drops_injected,
            a.rel.dups_injected,
            a.rel.corrupts_injected
        ),
        (
            c.rel.drops_injected,
            c.rel.dups_injected,
            c.rel.corrupts_injected
        ),
        "different seeds should differ"
    );
}

#[test]
fn faults_trigger_retransmissions_and_stay_exact() {
    let mut exp = small_exp();
    exp.faults = FaultSpec {
        drop: 0.3,
        ..lossy(5)
    };
    let r = exp.run(Strategy::Specialized);
    assert!(r.rel.drops_injected > 0, "30% drop over 32 pkts must hit");
    assert!(r.rel.retransmissions > 0);
    assert!(r.rel.delivered_exactly_once);
}

#[test]
fn total_loss_degrades_to_host_fallback_and_recovers() {
    let mut exp = small_exp();
    // Every transmission (and retransmission) is dropped: the sender
    // exhausts its retry budget on every packet and the host-fallback
    // channel must recover all of them.
    exp.faults = FaultSpec {
        drop: 1.0,
        duplicate: 0.0,
        corrupt: 0.0,
        reorder_window: 0,
        seed: 3,
    };
    exp.reliability.max_retries = 2;
    let r = exp.run(Strategy::RwCp);
    assert_eq!(r.rel.host_fallback_packets, r.npkt);
    assert!(r.rel.delivered_exactly_once);
    assert_eq!(
        r.rel.retransmissions,
        r.npkt * exp.reliability.max_retries as u64
    );
}

#[test]
fn corruption_only_mix_rejects_and_retransmits() {
    let mut exp = small_exp();
    exp.faults = FaultSpec {
        drop: 0.0,
        duplicate: 0.0,
        corrupt: 0.2,
        reorder_window: 0,
        seed: 11,
    };
    let r = exp.run(Strategy::HpuLocal);
    assert!(r.rel.corrupts_injected > 0);
    assert_eq!(r.rel.corrupts_injected, r.rel.corrupts_rejected);
    assert!(
        r.rel.retransmissions > 0,
        "rejected packets must retransmit"
    );
    assert!(r.rel.delivered_exactly_once);
}

#[test]
fn inert_faults_take_the_legacy_lossless_path_bit_identically() {
    let base = small_exp();
    let mut with_knobs = small_exp();
    with_knobs.faults = FaultSpec::inert();
    with_knobs.reliability.rto = nca_sim::us(1); // must not matter
    for s in Strategy::ALL {
        let a = base.run(s);
        let b = with_knobs.run(s);
        assert_eq!(a.t_complete, b.t_complete, "{}", s.label());
        assert_eq!(a.host_buf, b.host_buf);
        assert_eq!(a.dma_writes, b.dma_writes);
        assert_eq!(a.rel, b.rel);
        assert!(a.rel.delivered_exactly_once);
        assert_eq!(a.rel.transmissions, 0, "lossless path has no tx state");
    }
}

#[test]
fn nic_memory_exhaustion_falls_back_to_host_unpack() {
    let mut exp = small_exp();
    exp.params.nic_mem_capacity = 16; // nothing fits
    exp.enforce_nic_capacity = true;
    let r = exp.run(Strategy::RwCp); // internal verify => byte-exact
    assert!(r.rel.nic_mem_fallback);

    // And the fallback still works on a lossy network.
    exp.faults = lossy(21);
    let r2 = exp.run(Strategy::RwCp);
    assert!(r2.rel.nic_mem_fallback);
    assert!(r2.rel.delivered_exactly_once);

    // With capacity restored the normal offloaded path is taken.
    exp.params.nic_mem_capacity = 4 << 20;
    exp.faults = FaultSpec::inert();
    let r3 = exp.run(Strategy::RwCp);
    assert!(!r3.rel.nic_mem_fallback);
}

#[test]
fn reordering_window_alone_preserves_exactness() {
    let mut exp = small_exp();
    exp.faults = FaultSpec {
        drop: 0.0,
        duplicate: 0.0,
        corrupt: 0.0,
        reorder_window: nca_sim::us(10),
        seed: 8,
    };
    for s in Strategy::ALL {
        let r = exp.run(s);
        assert!(r.rel.delivered_exactly_once, "{}", s.label());
        assert_eq!(r.rel.drops_injected + r.rel.corrupts_injected, 0);
    }
}
