//! Property-based end-to-end tests: random datatypes through the full
//! simulated NIC pipeline under every strategy, in and out of order.

use proptest::prelude::*;

use ncmt::core::runner::{Experiment, Strategy as Recv};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::sim::{FaultSpec, WireBuf};
use ncmt::spin::builtin::ContigProcessor;
use ncmt::spin::nic::{ReceiveSim, RunConfig};
use ncmt::spin::params::NicParams;

/// Random small-but-multi-packet datatypes (messages of 4–64 KiB).
fn arb_message_type() -> impl Strategy<Value = (Datatype, u32)> {
    let base = prop_oneof![Just(elem::int()), Just(elem::double()), Just(elem::float())];
    (base, 1u32..3).prop_flat_map(|(b, count)| {
        let (b1, b2, b3) = (b.clone(), b.clone(), b);
        prop_oneof![
            // vector
            (64u32..512, 1u32..16, 1i64..8).prop_map(move |(c, bl, gap)| {
                (Datatype::vector(c, bl, bl as i64 + gap, &b1), count)
            }),
            // indexed_block with irregular gaps
            (proptest::collection::vec(1i64..5, 16..128), 1u32..6).prop_map(move |(gaps, bl)| {
                let mut displs = Vec::with_capacity(gaps.len());
                let mut at = 0i64;
                for g in gaps {
                    displs.push(at);
                    at += bl as i64 + g;
                }
                (
                    Datatype::indexed_block(bl, &displs, &b2).expect("valid"),
                    count,
                )
            }),
            // nested vector (general strategies only path)
            (4u32..16, 2u32..6, 8u32..32).prop_map(move |(oc, ic, stride)| {
                let inner = Datatype::vector(ic, 1, 3, &b3);
                (
                    Datatype::hvector(oc, 1, (stride as i64) * 64, &inner),
                    count,
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_strategies_byte_exact((dt, count) in arb_message_type()) {
        prop_assume!(dt.size * count as u64 >= 4096);
        let exp = Experiment::new(dt, count, NicParams::with_hpus(8));
        for s in Recv::ALL {
            // Experiment::run verifies the receive buffer byte-for-byte.
            let r = exp.run(s);
            prop_assert!(r.t_complete > r.t_first_byte);
        }
    }

    #[test]
    fn out_of_order_byte_exact((dt, count) in arb_message_type(), seed in 0u64..1000) {
        prop_assume!(dt.size * count as u64 >= 8192);
        let mut exp = Experiment::new(dt, count, NicParams::with_hpus(8));
        exp.out_of_order = Some(seed);
        for s in Recv::ALL {
            exp.run(s);
        }
    }

    /// Random DDTs under random seeded fault schedules: delivery must
    /// stay byte-exact and exactly-once for every strategy. Fault rates
    /// are drawn as permille integers so a failing case shrinks toward
    /// the minimal fault schedule (rates walk to 0 knob by knob, then
    /// the datatype shrinks).
    #[test]
    fn faulty_network_byte_exact(
        (dt, count) in arb_message_type(),
        fault_seed in 0u64..1000,
        drop_pm in 0u64..120,
        dup_pm in 0u64..60,
        corrupt_pm in 0u64..40,
        reorder_us in 0u64..4,
    ) {
        prop_assume!(dt.size * count as u64 >= 4096);
        let mut exp = Experiment::new(dt, count, NicParams::with_hpus(8));
        exp.faults = FaultSpec {
            drop: drop_pm as f64 / 1000.0,
            duplicate: dup_pm as f64 / 1000.0,
            corrupt: corrupt_pm as f64 / 1000.0,
            reorder_window: nca_sim::us(reorder_us),
            seed: fault_seed,
        };
        for s in Recv::ALL {
            // Experiment::run verifies the receive buffer byte-for-byte.
            let r = exp.run(s);
            prop_assert!(r.rel.delivered_exactly_once, "{}", s.label());
            prop_assert_eq!(r.rel.dups_injected, r.rel.dups_suppressed);
            prop_assert_eq!(r.rel.corrupts_injected, r.rel.corrupts_rejected);
        }
    }

    /// The zero-copy pipeline shares one `WireBuf` between the sender,
    /// every retransmission, and the fault layer. Corruption must be
    /// applied to a copy-on-write snapshot of the hit packet only: after
    /// an aggressively corrupting run, the shared buffer is still
    /// byte-identical to what the sender packed.
    #[test]
    fn corruption_never_touches_the_senders_buffer(
        len_kb in 1usize..48,
        fault_seed in 0u64..1000,
        corrupt_pm in 100u64..800,
    ) {
        let bytes = len_kb << 10;
        let msg: Vec<u8> = (0..bytes).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        let packed: WireBuf = msg.clone().into();
        let params = NicParams::with_hpus(8);
        let mut cfg = RunConfig::new(params.clone());
        cfg.faults = FaultSpec {
            corrupt: corrupt_pm as f64 / 1000.0,
            seed: fault_seed,
            ..FaultSpec::inert()
        };
        let proc = Box::new(ContigProcessor::new(0, params.spin_min_handler()));
        let r = ReceiveSim::run(proc, packed.clone(), 0, bytes as u64, &cfg);
        prop_assert_eq!(&packed[..], &msg[..], "sender's wire buffer was mutated");
        prop_assert_eq!(r.host_buf, msg);
        prop_assert_eq!(r.rel.corrupts_injected, r.rel.corrupts_rejected);
    }

    #[test]
    fn processing_time_at_least_wire_time((dt, count) in arb_message_type()) {
        let exp = Experiment::new(dt.clone(), count, NicParams::with_hpus(16));
        let msg = dt.size * count as u64;
        prop_assume!(msg >= 4096);
        let r = exp.run(Recv::Specialized);
        // Nothing can beat serialization at line rate.
        let wire = NicParams::default().line_rate.time_for(msg);
        prop_assert!(r.processing_time() >= wire);
    }
}

/// A zero-length message still produces a well-formed run: one empty
/// packet, an empty host buffer, and a completion signal.
#[test]
fn zero_length_message_completes() {
    let params = NicParams::with_hpus(4);
    let cfg = RunConfig::new(params.clone());
    let proc = Box::new(ContigProcessor::new(0, params.spin_min_handler()));
    let r = ReceiveSim::run(proc, WireBuf::empty(), 0, 0, &cfg);
    assert_eq!(r.npkt, 1);
    assert!(r.host_buf.is_empty());
    assert!(r.t_complete > 0);
}

/// `payload_size` larger than the whole message degenerates to a single
/// packet that carries the entire stream.
#[test]
fn payload_size_exceeding_message_is_one_packet() {
    let msg: Vec<u8> = (0..100u32).map(|i| (i % 251) as u8).collect();
    let params = NicParams::with_hpus(4);
    assert!(params.payload_size > msg.len() as u64);
    let cfg = RunConfig::new(params.clone());
    let proc = Box::new(ContigProcessor::new(0, params.spin_min_handler()));
    let packed: WireBuf = msg.clone().into();
    let r = ReceiveSim::run(proc, packed.clone(), 0, msg.len() as u64, &cfg);
    assert_eq!(r.npkt, 1);
    assert_eq!(r.host_buf, msg);
    assert_eq!(&packed[..], &msg[..]);
}
