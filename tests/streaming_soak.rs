//! Bounded-memory acceptance soak (ISSUE 7): a million-message traffic
//! run under the streaming sink must hold the aggregate below 32 MiB
//! while producing latency histograms byte-identical to the retained
//! ring path. `#[ignore]`d by default — it simulates hundreds of
//! milliseconds of NIC time; run it in release:
//!
//! ```sh
//! cargo test --release --test streaming_soak -- --ignored
//! ```

use std::sync::Arc;

use ncmt::sim::us;
use ncmt::spin::sched::QueueDiscipline;
use ncmt::telemetry::aggregate::merged_hist;
use ncmt::telemetry::{Recorder, StreamingRecorder, Telemetry};
use ncmt::traffic::{generate_schedule, run_traffic_with, TrafficSweepSpec};

#[test]
#[ignore = "million-message soak; run with --release -- --ignored"]
fn million_message_run_stays_under_32_mib_with_identical_histograms() {
    let mut spec = TrafficSweepSpec::new(7);
    spec.tenants = 4;
    spec.hpus = 8;

    // Grow the horizon until the offered schedule crosses a million
    // messages (the offer rate is a pure function of the config, so
    // this probes the schedule generator only, not the full run).
    let mut horizon = us(4_000);
    let cfg = loop {
        spec.horizon_ps = horizon;
        let cfg = spec.cell_config("COMB/b", 1.1, QueueDiscipline::DFcfs);
        let offered = generate_schedule(&cfg).len();
        if offered >= 1_000_000 {
            break cfg;
        }
        let scale = (1_000_000 / offered.max(1) + 1) as u64;
        horizon *= scale.clamp(2, 64);
    };

    let stream = Arc::new(StreamingRecorder::new(us(1)));
    let tel = Telemetry::with_recorder(stream.clone() as Arc<dyn Recorder>);
    let r = run_traffic_with(&cfg, &tel);
    let offered: u64 = r.tenants.iter().map(|t| t.offered).sum();
    assert!(offered >= 1_000_000, "soak offered only {offered} messages");

    let bytes = stream.approx_bytes();
    assert!(
        bytes < 32 << 20,
        "streaming sink grew to {bytes} bytes over {offered} messages"
    );

    // Ring arm: the ring is far smaller than the event volume, but the
    // per-tenant latency histograms are emitted once at the end of the
    // run as `Hist` snapshots, so eviction cannot touch them — which is
    // exactly why the comparison must come out byte-identical.
    let (ring_tel, ring) = Telemetry::ring(1 << 18);
    let r2 = run_traffic_with(&cfg, &ring_tel);
    assert_eq!(r.tenants.len(), r2.tenants.len());

    let agg = stream.take();
    let ring_events = ring.events();
    let from_ring =
        merged_hist(&ring_events, "traffic", "latency_ps").expect("ring kept the hist snapshots");
    let from_stream = agg
        .merged_hist("traffic", "latency_ps")
        .expect("stream folded the hist snapshots");
    assert_eq!(
        from_stream, &from_ring,
        "streamed latency histogram diverged from the ring path"
    );
    assert_eq!(
        from_stream.count(),
        r.tenants.iter().map(|t| t.latency.count()).sum::<u64>()
    );
}
