//! End-to-end tests of the declarative scenario layer through the
//! `ncmt` facade: every shipped `scenarios/*.json` parses, compiles
//! and runs; the `traffic` and `ddt-host-compare` scenarios reproduce
//! their committed goldens byte-for-byte; and scenario runs stay
//! byte-identical at any worker count.

use ncmt::scenario::{parse_scenario, Plan, RunOptions, Scenario};
use ncmt::sim::Pool;

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn shipped(name: &str) -> Scenario {
    let path = repo_path(&format!("scenarios/{name}"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing scenario {path}: {e}"));
    parse_scenario(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn shipped_names() -> Vec<String> {
    let dir = repo_path("scenarios");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing {dir}: {e}"))
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .into_string()
                .expect("utf-8 name")
        })
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    names
}

#[test]
fn every_shipped_scenario_parses_and_compiles() {
    let names = shipped_names();
    assert!(
        names.len() >= 4,
        "expected the shipped scenario set, found {names:?}"
    );
    for name in names {
        let scn = shipped(&name);
        scn.compile()
            .unwrap_or_else(|e| panic!("scenarios/{name}: {e}"));
    }
}

#[test]
fn shipped_scenarios_are_byte_identical_at_any_worker_count() {
    // traffic.json and ddt_host_compare.json are pinned byte-for-byte
    // by their golden tests below at whatever NCMT_JOBS is in effect
    // (and the CI scenario-matrix job cmp-gates every shipped file at
    // --jobs 1 vs --jobs 4 in release), so the debug-build double-run
    // here covers the two cheap scenarios only.
    for name in ["fault_sweep.json", "fig16.json"] {
        let plan = shipped(name).compile().expect("compiles");
        let opts = RunOptions {
            want_trace: false,
            want_report: true,
        };
        let serial = plan.run(&Pool::serial(), &opts);
        let parallel = plan.run(&Pool::new(4), &opts);
        assert_eq!(
            serial.stdout, parallel.stdout,
            "scenarios/{name}: stdout differs between --jobs 1 and --jobs 4"
        );
        assert_eq!(
            serial.artifact.as_ref().map(|a| &a.text),
            parallel.artifact.as_ref().map(|a| &a.text),
            "scenarios/{name}: artifact differs between --jobs 1 and --jobs 4"
        );
    }
}

#[test]
fn traffic_scenario_reproduces_the_traffic_golden() {
    let plan = shipped("traffic.json").compile().expect("compiles");
    assert!(matches!(plan, Plan::Traffic(_)));
    let out = plan.run(&Pool::from_env(None), &RunOptions::default());
    let golden = std::fs::read_to_string(repo_path("tests/golden/traffic_baseline.json"))
        .expect("committed golden");
    assert_eq!(
        out.artifact.expect("traffic artifact").text,
        golden,
        "scenarios/traffic.json drifted from tests/golden/traffic_baseline.json \
         (the scenario mirrors the golden-gate traffic flags; regenerate the \
         golden with `cargo test --test traffic_engine -- --ignored regenerate` \
         only for an intended model change)"
    );
}

#[test]
fn ddt_host_compare_reproduces_its_golden() {
    let plan = shipped("ddt_host_compare.json")
        .compile()
        .expect("compiles");
    let out = plan.run(&Pool::from_env(None), &RunOptions::default());
    assert!(out.fail.is_none(), "{:?}", out.fail);
    let path = repo_path("tests/golden/ddt_host_compare.json");
    let golden =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path}: {e}"));
    assert_eq!(
        out.artifact.expect("ddt-compare artifact").text,
        golden,
        "ddt-host-compare drifted from its golden; if the cost model or \
         datatype change is intended, regenerate with \
         `cargo test --test scenario_run -- --ignored regenerate` and commit {path}"
    );
}

/// Not a test: rewrites the ddt-host-compare golden. Run explicitly via
/// `cargo test --test scenario_run -- --ignored regenerate`.
#[test]
#[ignore]
fn regenerate_golden_ddt_host_compare() {
    let plan = shipped("ddt_host_compare.json")
        .compile()
        .expect("compiles");
    let out = plan.run(&Pool::from_env(None), &RunOptions::default());
    let path = repo_path("tests/golden/ddt_host_compare.json");
    std::fs::write(&path, out.artifact.expect("artifact").text).expect("write golden");
}

#[test]
fn fig16_scenario_renders_the_quick_figure_table() {
    let plan = shipped("fig16.json").compile().expect("compiles");
    let out = plan.run(&Pool::from_env(None), &RunOptions::default());
    let table = ncmt::scenario::fig16::render(Some(512), &Pool::from_env(None));
    let art = out.artifact.expect("figure artifact");
    assert_eq!(art.text, table);
    assert_eq!(out.stdout, table, "the figure table is also the stdout");
}
