//! Integration tests for the `nca-mpi` message-passing layer combined
//! with the application workloads: many ranks, mixed datatypes, reuse
//! of offloaded state across iterations.

use ncmt::ddt::pack::buffer_span;
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::mpi::World;
use ncmt::spin::params::NicParams;

fn pattern(span: u64, seed: usize) -> Vec<u8> {
    (0..span as usize)
        .map(|i| ((i * 31 + seed) % 251) as u8)
        .collect()
}

fn verify_mapped(dt: &Datatype, origin: i64, got: &[u8], sent: &[u8]) {
    ncmt::ddt::typemap::for_each_block(dt, 1, |off, len| {
        let s = (off - origin) as usize;
        assert_eq!(&got[s..s + len as usize], &sent[s..s + len as usize]);
    });
}

#[test]
fn ring_of_mixed_datatypes() {
    let ranks = 8u32;
    let types: Vec<Datatype> = vec![
        Datatype::vector(256, 4, 8, &elem::double()),
        Datatype::indexed_block(2, &[0, 5, 11, 16, 23, 29], &elem::double()).unwrap(),
        Datatype::contiguous(512, &elem::float()),
        Datatype::vector(64, 16, 32, &elem::int()),
    ];
    let mut w = World::new(ranks, NicParams::with_hpus(8));
    for (round, dt) in types.iter().enumerate() {
        let (origin, span) = buffer_span(dt, 1);
        let bufs: Vec<Vec<u8>> = (0..ranks)
            .map(|r| pattern(span, r as usize * 7 + round))
            .collect();
        let reqs: Vec<_> = (0..ranks)
            .map(|r| w.irecv(r, dt, 1, (r + ranks - 1) % ranks, round as u32))
            .collect();
        for r in 0..ranks {
            let b = bufs[r as usize].clone();
            w.isend(r, &b, origin, dt, 1, (r + 1) % ranks, round as u32);
        }
        for r in 0..ranks {
            let (got, o) = w.wait(r, reqs[r as usize]);
            assert_eq!(o, origin);
            verify_mapped(dt, origin, &got, &bufs[((r + ranks - 1) % ranks) as usize]);
        }
    }
    // clocks advanced monotonically and consistently
    for r in 0..ranks {
        assert!(w.time(r) > 0);
    }
}

#[test]
fn repeated_receives_reuse_offloaded_state() {
    // The same datatype posted repeatedly must hit the NIC-resident
    // state (Fig. 18's amortization pathway) — observable as a constant
    // per-iteration time after the first.
    let dt = Datatype::vector(1024, 8, 16, &elem::double());
    let (origin, span) = buffer_span(&dt, 1);
    let mut w = World::new(2, NicParams::with_hpus(16));
    let mut iter_times = Vec::new();
    let mut prev = 0;
    for i in 0..5 {
        let req = w.irecv(1, &dt, 1, 0, i);
        let buf = pattern(span, i as usize);
        w.isend(0, &buf, origin, &dt, 1, 1, i);
        w.wait(1, req);
        iter_times.push(w.time(1) - prev);
        prev = w.time(1);
    }
    // All iterations complete; later iterations are no slower than the
    // first (state resident, no re-commit cost in this model).
    for (i, t) in iter_times.iter().enumerate().skip(1) {
        assert!(
            *t <= iter_times[0] * 2,
            "iteration {i} regressed: {t} vs {}",
            iter_times[0]
        );
    }
}

#[test]
fn deterministic_world() {
    let dt = Datatype::vector(512, 4, 12, &elem::double());
    let (origin, span) = buffer_span(&dt, 1);
    let run = || {
        let mut w = World::new(4, NicParams::with_hpus(8));
        let reqs: Vec<_> = (0..4).map(|r| w.irecv(r, &dt, 1, (r + 3) % 4, 0)).collect();
        for r in 0..4u32 {
            let b = pattern(span, r as usize);
            w.isend(r, &b, origin, &dt, 1, (r + 1) % 4, 0);
        }
        for r in 0..4u32 {
            w.wait(r, reqs[r as usize]);
        }
        (0..4).map(|r| w.time(r)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn app_workload_through_mpi_layer() {
    // A real Fig. 16 workload exchanged between two ranks.
    let w = ncmt::workloads::apps::nas_mg();
    let dt = &w[0].dt;
    let (origin, span) = buffer_span(dt, 1);
    let mut world = World::new(2, NicParams::with_hpus(16));
    let req = world.irecv(1, dt, 1, 0, 3);
    let buf = pattern(span, 9);
    world.isend(0, &buf, origin, dt, 1, 1, 3);
    let (got, _) = world.wait(1, req);
    verify_mapped(dt, origin, &got, &buf);
}
