//! Smoke tests over the figure harnesses (quick mode): every figure
//! must compute, and its headline claims must hold in reduced form.

use nca_bench::figures;

#[test]
fn fig02_overhead_near_24_percent() {
    let rows = figures::fig02::rows();
    assert_eq!(rows.len(), 2);
    let overhead = rows[1].total() as f64 / rows[0].total() as f64 - 1.0;
    assert!(
        (0.22..=0.27).contains(&overhead),
        "sPIN overhead {overhead}"
    );
    // end-to-end simulation within 10% of the component sum
    let sim = figures::fig02::simulated_spin_total() as f64;
    let sum = rows[1].total() as f64;
    assert!((sim - sum).abs() / sum < 0.10, "sim {sim} vs sum {sum}");
}

#[test]
fn fig08_specialized_wins_large_blocks_host_wins_tiny() {
    let rows = figures::fig08::rows(true);
    let tiny = rows.first().expect("tiny block row");
    let large = rows.last().expect("large block row");
    // tiny (16 B in quick mode): host competitive or better vs general
    assert!(
        tiny.host > tiny.offloaded[3],
        "host must beat HPU-local at tiny blocks"
    );
    // large (2 KiB): specialized near line rate and above host
    assert!(
        large.offloaded[0] > 150.0,
        "specialized {:.1}",
        large.offloaded[0]
    );
    assert!(large.offloaded[0] > large.host);
}

#[test]
fn fig09c_reaches_line_rate_at_256b() {
    let rows = figures::fig09c::rows();
    assert!(rows[0].0 == 256 && rows[0].1 >= 170.0);
    assert!(rows.iter().skip(1).all(|&(_, bw)| bw >= 200.0));
}

#[test]
fn fig10_crossover_between_128_and_512() {
    let rows = figures::fig10::rows();
    let at = |b: u64| rows.iter().find(|r| r.0 == b).expect("row");
    assert!(at(64).1 < at(64).2, "PULP must trail ARM at 64 B");
    assert!(at(512).1 > at(512).2, "PULP must beat ARM at 512 B");
}

#[test]
fn fig11_ipc_band() {
    for (b, ipc) in figures::fig11::rows() {
        assert!((0.08..=0.40).contains(&ipc), "block {b}: IPC {ipc}");
    }
}

#[test]
fn fig12_breakdown_shapes() {
    let rows = figures::fig12::rows(true);
    let cell = |s: &str, g: u64| {
        *rows
            .iter()
            .find(|r| r.strategy == s && r.gamma == g)
            .expect("cell")
    };
    // RW-CP within ~3x of specialized at γ=16.
    let rw = cell("RW-CP", 16);
    let sp = cell("Specialized", 16);
    let ratio = (rw.init_us + rw.setup_us + rw.proc_us) / (sp.init_us + sp.setup_us + sp.proc_us);
    assert!((1.2..=3.5).contains(&ratio), "ratio {ratio}");
    // HPU-local dominated by setup (catch-up).
    let hl = cell("HPU-local", 16);
    assert!(hl.setup_us > 0.7 * (hl.init_us + hl.setup_us + hl.proc_us));
    // RO-CP dominated by init (checkpoint copy) at γ=1.
    let ro = cell("RO-CP", 1);
    assert!(ro.init_us > ro.proc_us);
}

#[test]
fn fig13_nic_memory_trends() {
    let by_block = figures::fig13::nicmem_vs_block(true);
    // Specialized memory is flat; RW-CP grows with block size.
    let first = by_block.first().expect("first");
    let last = by_block.last().expect("last");
    assert_eq!(first.1[0], last.1[0], "specialized NIC state is O(1)");
    assert!(
        last.1[1] >= first.1[1],
        "RW-CP checkpoints grow with block size"
    );
    let by_hpus = figures::fig13::nicmem_vs_hpus(true);
    let f = by_hpus.first().expect("first");
    let l = by_hpus.last().expect("last");
    assert!(l.1[3] > f.1[3], "HPU-local memory grows with HPUs");
    assert!(l.1[1] >= f.1[1], "RW-CP memory grows with HPUs");
}

#[test]
fn fig14_total_writes_scale_with_gamma() {
    let rows = figures::fig14::rows(true);
    assert!(rows.last().expect("last").total_writes > rows[0].total_writes * 8);
}

#[test]
fn fig15_timelines_have_host_overhead_for_checkpointed() {
    let ts = figures::fig15::timelines(true);
    let rocp = ts.iter().find(|t| t.strategy == "RO-CP").expect("RO-CP");
    assert!(rocp.host_overhead > 0);
    for t in &ts {
        assert!(!t.series.is_empty(), "{} has no DMA activity", t.strategy);
    }
}

#[test]
fn fig16_headline_claims() {
    let rows = figures::fig16::rows(true);
    assert!(rows.len() >= 20);
    let best = rows
        .iter()
        .map(|r| r.speedup[0].max(r.speedup[1]))
        .fold(0.0f64, f64::max);
    assert!(best > 4.0, "peak offload speedup {best}");
    // SPEC-OC (γ≈512) must NOT benefit from offload.
    let oc = rows
        .iter()
        .find(|r| r.label.starts_with("SPEC-OC"))
        .expect("SPEC-OC");
    assert!(
        oc.speedup[0] < 1.0,
        "SPEC-OC RW-CP speedup {}",
        oc.speedup[0]
    );
    // iovec NIC state is linear in regions and far larger than RW-CP's
    // for fine-grained types.
    assert!(oc.nic_kib[2] > oc.nic_kib[0]);
}

#[test]
fn fig17_offload_moves_less_data() {
    let rows = figures::fig17::rows(true);
    for (label, off, host) in &rows {
        assert!(host > off, "{label}: host {host} must exceed offload {off}");
    }
}

#[test]
fn fig18_majority_amortize_quickly() {
    let rows = figures::fig18::rows(true);
    let finite: Vec<f64> = rows.iter().map(|r| r.1).filter(|v| v.is_finite()).collect();
    let under4 = finite.iter().filter(|&&v| v < 4.0).count();
    assert!(
        under4 as f64 / finite.len() as f64 > 0.5,
        "{under4}/{} amortize in <4 reuses",
        finite.len()
    );
}

#[test]
fn fig19_offload_speedup_positive_and_bounded() {
    let rows = figures::fig19::rows(true);
    for (p, host, rwcp, s) in rows {
        assert!(rwcp < host, "P={p}");
        assert!((0.0..=60.0).contains(&s), "P={p}: speedup {s}%");
    }
}

#[test]
fn sender_strategies_ordering() {
    let rows = figures::sender::rows(true);
    for (b, inject, cpu) in rows {
        assert!(inject[1] <= inject[0], "streaming ≤ pack at block {b}");
        assert!(
            cpu[2] < cpu[1] / 10.0,
            "outbound sPIN frees the CPU at block {b}"
        );
    }
}
