//! End-to-end unexpected-message handling (paper Sec. 3.2.6): offloaded
//! datatype processing is impossible before the receive is posted, so
//! overflow-matched messages land packed and the host unpacks later.

use ncmt::core::costmodel::HostCostModel;
use ncmt::core::runner::Strategy;
use ncmt::ddt::dataloop::compile;
use ncmt::ddt::pack::{buffer_span, pack, unpack};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::portals::matching::{MatchEntry, MatchingUnit};
use ncmt::spin::nic::{MsgPath, PortalsSetup, ReceiveSim, RunConfig};
use ncmt::spin::params::NicParams;
use ncmt::telemetry::Telemetry;

fn me(bits: u64, exec_ctx: Option<u32>, ignore: u64) -> MatchEntry {
    MatchEntry {
        id: 0,
        match_bits: bits,
        ignore_bits: ignore,
        start: 0,
        length: 1 << 22,
        exec_ctx,
        use_once: false,
    }
}

#[test]
fn expected_ddt_message_processes_on_the_spin_path() {
    let dt = Datatype::vector(1024, 8, 16, &elem::double());
    let (origin, span) = buffer_span(&dt, 1);
    let src: Vec<u8> = (0..span as usize).map(|i| (i % 251) as u8).collect();
    let packed = pack(&dt, 1, &src, origin).unwrap();
    let params = NicParams::with_hpus(16);

    let mut mu = MatchingUnit::new();
    mu.append_priority(me(0xAA, Some(1), 0));
    let cfg = RunConfig {
        params: params.clone(),
        out_of_order: None,
        record_dma_history: false,
        engine: ncmt::spin::nic::EngineMode::Auto,
        portals: Some(PortalsSetup {
            matching: mu,
            match_bits: 0xAA,
        }),
        telemetry: Telemetry::disabled(),
        faults: ncmt::sim::FaultSpec::inert(),
        reliability: ncmt::spin::params::ReliabilityParams::default(),
    };
    let proc_ = Strategy::RwCp.build(&dt, 1, params, 0.2, Telemetry::disabled());
    let report = ReceiveSim::run(proc_, packed.clone(), origin, span, &cfg);
    assert_eq!(report.path, MsgPath::Spin);
    // handler-scattered result equals the reference unpack
    let mut expect = vec![0u8; span as usize];
    unpack(&dt, 1, &packed, &mut expect, origin).unwrap();
    assert_eq!(report.host_buf, expect);
}

#[test]
fn unexpected_ddt_message_lands_packed_and_host_unpack_finishes_later() {
    let dt = Datatype::vector(1024, 8, 16, &elem::double());
    let (origin, span) = buffer_span(&dt, 1);
    let src: Vec<u8> = (0..span as usize).map(|i| (i % 251) as u8).collect();
    let packed = pack(&dt, 1, &src, origin).unwrap();
    let params = NicParams::with_hpus(16);

    // Only an overflow wildcard matches: the message is unexpected.
    let mut mu = MatchingUnit::new();
    mu.append_priority(me(0x55, Some(1), 0)); // wrong bits
    mu.append_overflow(me(0, None, !0)); // wildcard overflow buffer
    let cfg = RunConfig {
        params: params.clone(),
        out_of_order: None,
        record_dma_history: false,
        engine: ncmt::spin::nic::EngineMode::Auto,
        portals: Some(PortalsSetup {
            matching: mu,
            match_bits: 0xAA,
        }),
        telemetry: Telemetry::disabled(),
        faults: ncmt::sim::FaultSpec::inert(),
        reliability: ncmt::spin::params::ReliabilityParams::default(),
    };
    let proc_ = Strategy::RwCp.build(&dt, 1, params.clone(), 0.2, Telemetry::disabled());
    // Overflow landing is contiguous: the buffer receives the PACKED
    // stream, not the scattered layout.
    let report = ReceiveSim::run(proc_, packed.clone(), 0, packed.len() as u64, &cfg);
    assert_eq!(report.path, MsgPath::Unexpected);
    assert_eq!(
        report.host_buf, packed,
        "overflow buffer holds packed bytes"
    );
    assert!(report.handler_costs.is_empty(), "no DDT handlers ran");

    // The eventual receive must fall back to the host unpack; total time
    // = landing + host unpack, which exceeds the offloaded path.
    let host = HostCostModel::default();
    let dl = compile(&dt, 1);
    let t_unexpected = report.processing_time() + host.unpack_time(dl.size, dl.blocks);

    let mut mu2 = MatchingUnit::new();
    mu2.append_priority(me(0xAA, Some(1), 0));
    let cfg2 = RunConfig {
        params: params.clone(),
        out_of_order: None,
        record_dma_history: false,
        engine: ncmt::spin::nic::EngineMode::Auto,
        portals: Some(PortalsSetup {
            matching: mu2,
            match_bits: 0xAA,
        }),
        telemetry: Telemetry::disabled(),
        faults: ncmt::sim::FaultSpec::inert(),
        reliability: ncmt::spin::params::ReliabilityParams::default(),
    };
    let proc2 = Strategy::RwCp.build(&dt, 1, params, 0.2, Telemetry::disabled());
    let offloaded = ReceiveSim::run(proc2, packed, origin, span, &cfg2);
    assert!(
        offloaded.processing_time() < t_unexpected,
        "offloaded {} must beat unexpected+host-unpack {}",
        offloaded.processing_time(),
        t_unexpected
    );
}
