//! Equivalence wall for the streaming telemetry pipeline: folding
//! events into bounded [`StreamAggregate`] reducers at emission must be
//! indistinguishable from retaining every event and rolling the stream
//! up afterwards — for arbitrary event sequences, at any shard count,
//! and end to end through the runner's parallel capture path. This is
//! the contract that lets long runs drop the ring without changing a
//! single reported number.

use std::sync::Arc;

use proptest::prelude::*;

use ncmt::core::report::strategy_report;
use ncmt::core::runner::{CaptureSpec, Experiment, Strategy as Recv};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::sim::Pool;
use ncmt::spin::params::NicParams;
use ncmt::telemetry::aggregate::rollup;
use ncmt::telemetry::hist::LogHistogram;
use ncmt::telemetry::{EventKind, StreamAggregate, TraceEvent};

const BUCKET_PS: u64 = 100_000;
const COMPONENTS: [&str; 3] = ["spin", "core", "traffic"];
const NAMES: [&str; 4] = ["pkts", "handler", "depth", "lat"];

/// Arbitrary events over small pools of components/names/tracks so
/// reducer keys collide often (the interesting case for merging).
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        0usize..COMPONENTS.len(),
        0usize..NAMES.len(),
        0u64..4,
        0u64..8 * BUCKET_PS,
        0usize..6,
        0u64..3 * BUCKET_PS,
    )
        .prop_map(|(c, n, track, time, k, x)| {
            let kind = match k {
                0 => EventKind::Counter { delta: x + 1 },
                1 => EventKind::Gauge { value: x as f64 },
                2 => EventKind::Value {
                    value: x as f64 / 3.0,
                },
                3 => EventKind::Span { end: time + x },
                4 => EventKind::Instant,
                _ => {
                    let mut h = LogHistogram::new();
                    h.record(x + 1);
                    h.record(x / 2 + 1);
                    EventKind::Hist { hist: Arc::new(h) }
                }
            };
            TraceEvent {
                scope: "",
                component: COMPONENTS[c],
                name: NAMES[n],
                track,
                time,
                kind,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any event sequence: (a) the incremental fold reduces to the
    /// identical rollup as retaining the events, and (b) splitting the
    /// sequence into any number of shards, folding each separately and
    /// merging in serial order reproduces the single-fold state —
    /// rollups, busy series and gauge-peak series included.
    #[test]
    fn fold_equals_retained_rollup_at_any_shard_count(
        evs in proptest::collection::vec(arb_event(), 0..120),
        shards in 1usize..6,
    ) {
        let mut serial = StreamAggregate::new(BUCKET_PS);
        for e in &evs {
            serial.fold(e);
        }
        prop_assert_eq!(serial.rollups(), rollup(&evs));

        let chunk = evs.len().div_ceil(shards).max(1);
        let mut merged = StreamAggregate::new(BUCKET_PS);
        for part in evs.chunks(chunk) {
            let mut shard = StreamAggregate::new(BUCKET_PS);
            for e in part {
                shard.fold(e);
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(merged.rollups(), serial.rollups(), "shards = {}", shards);
        for ((c, n, t), series) in serial.busy_series_iter() {
            prop_assert_eq!(merged.busy_series(c, n, t), series);
        }
        for ((c, n, t), series) in serial.gauge_peak_iter() {
            prop_assert_eq!(merged.gauge_peak_series(c, n, t), series);
        }
    }
}

fn captured_experiment() -> Experiment {
    let dt = Datatype::vector(128, 8, 16, &elem::double());
    let mut exp = Experiment::new(dt, 1, NicParams::with_hpus(8));
    exp.verify = false;
    exp
}

const SPEC: CaptureSpec = CaptureSpec {
    ring_capacity: Some(1 << 20),
    stream_bucket_ps: Some(1_000_000),
};

/// End to end through the runner: the per-strategy streaming aggregates
/// a parallel sweep returns must roll up exactly like that strategy's
/// slice of the retained ring.
#[test]
fn runner_streaming_aggregates_match_ring_rollups() {
    let exp = captured_experiment();
    let sweep = exp.run_all_captured(&Pool::new(4), SPEC);
    assert_eq!(sweep.aggregates.len(), Recv::ALL.len());
    for (s, agg) in &sweep.aggregates {
        let evs: Vec<TraceEvent> = sweep
            .events
            .iter()
            .filter(|e| e.scope == s.label())
            .cloned()
            .collect();
        assert!(!evs.is_empty(), "{} captured no events", s.label());
        assert_eq!(agg.rollups(), rollup(&evs), "{}", s.label());
    }
}

/// Regression for per-job gauge decontamination at `--jobs 4`: each
/// strategy's NIC-memory high-water mark — both the streamed gauge HWM
/// and the report field derived from it — must equal its serial value,
/// not the maximum over whatever jobs shared a worker.
#[test]
fn nic_mem_hwm_is_per_job_at_jobs_4() {
    let exp = captured_experiment();
    let serial = exp.run_all_captured(&Pool::serial(), SPEC);
    let parallel = exp.run_all_captured(&Pool::new(4), SPEC);

    for ((s1, a1), (s2, a2)) in serial.aggregates.iter().zip(&parallel.aggregates) {
        assert_eq!(s1.label(), s2.label());
        let hwm = a1.gauge_hwm("spin", "nic_mem_bytes");
        assert!(hwm.is_some(), "{} recorded no NIC-memory gauge", s1.label());
        assert_eq!(hwm, a2.gauge_hwm("spin", "nic_mem_bytes"), "{}", s1.label());
    }
    // Strategies differ in footprint, so cross-job contamination (a
    // shared sink remembering a bigger job's peak) would break this.
    let hwms: Vec<u64> = serial
        .runs
        .iter()
        .zip(&parallel.runs)
        .map(|((s, run_s), (_, run_p))| {
            let rs = strategy_report(&exp, run_s, &serial.events, s.label());
            let rp = strategy_report(&exp, run_p, &parallel.events, s.label());
            assert_eq!(rs.nic_mem_hwm_bytes, rp.nic_mem_hwm_bytes, "{}", s.label());
            rs.nic_mem_hwm_bytes
        })
        .collect();
    let distinct = {
        let mut h = hwms.clone();
        h.sort_unstable();
        h.dedup();
        h.len()
    };
    assert!(
        distinct > 1,
        "strategies should have distinct HWMs for the check to bite: {hwms:?}"
    );
}
