//! Property-based determinism wall for the traffic engine (the
//! contract the golden gate spot-checks, generalized): the offered
//! schedule and the emitted artifact are pure functions of the seed —
//! independent of worker count — and per-tenant histograms merge
//! order-independently.

use proptest::prelude::*;

use ncmt::sim::Pool;
use ncmt::spin::sched::QueueDiscipline;
use ncmt::telemetry::hist::LogHistogram;
use ncmt::traffic::{generate_schedule, render_schedule, traffic_sweep, TrafficSweepSpec};

fn tiny_spec(seed: u64) -> TrafficSweepSpec {
    let mut s = TrafficSweepSpec::new(seed);
    s.apps = vec!["COMB/b".into()];
    s.loads = vec![0.5, 1.1];
    s.disciplines = vec![QueueDiscipline::BlockedRR, QueueDiscipline::DFcfs];
    s.tenants = 2;
    s.hpus = 4;
    s.horizon_ps = ncmt::sim::us(60);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The rendered offer schedule of every grid cell is byte-identical
    /// for a fixed seed regardless of the worker count used elsewhere —
    /// and the whole emitted artifact is too.
    #[test]
    fn schedule_and_artifact_are_byte_identical_at_any_jobs_count(
        seed in 0u64..1_000_000,
        jobs in 2usize..8,
    ) {
        let spec = tiny_spec(seed);
        let cfg = spec.cell_config("COMB/b", 0.5, QueueDiscipline::BlockedRR);
        let rendered = render_schedule(&generate_schedule(&cfg));
        prop_assert_eq!(&rendered, &render_schedule(&generate_schedule(&cfg)));
        prop_assert!(!rendered.is_empty());

        let serial = traffic_sweep(&spec, &Pool::serial()).to_json();
        let parallel = traffic_sweep(&spec, &Pool::new(jobs)).to_json();
        prop_assert_eq!(serial, parallel, "jobs = {}", jobs);
    }

    /// Merging per-tenant latency histograms is order-independent: any
    /// permutation of partial histograms folds to the same aggregate.
    #[test]
    fn histogram_merge_is_order_independent(
        chunks in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000_000_000, 1..40),
            2..6,
        ),
        perm_seed in 0u64..1_000,
    ) {
        let parts: Vec<LogHistogram> = chunks
            .iter()
            .map(|samples| {
                let mut h = LogHistogram::new();
                for &s in samples {
                    h.record(s);
                }
                h
            })
            .collect();
        let fold = |order: &[usize]| {
            let mut total = LogHistogram::new();
            for &i in order {
                total.merge(&parts[i]);
            }
            total
        };
        let serial_order: Vec<usize> = (0..parts.len()).collect();
        // A deterministic permutation derived from perm_seed.
        let mut shuffled = serial_order.clone();
        for i in (1..shuffled.len()).rev() {
            let j = ((perm_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(i as u32))
                % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let a = fold(&serial_order);
        let b = fold(&shuffled);
        prop_assert_eq!(&a, &b);
        let n: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        prop_assert_eq!(a.count(), n);
        prop_assert_eq!(a.percentile(99.9), b.percentile(99.9));
    }
}
