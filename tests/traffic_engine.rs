//! End-to-end tests of the `nca-traffic` engine through the `ncmt`
//! facade, plus the golden gate for the committed `ncmt-traffic`
//! artifact: the baseline in `tests/golden/traffic_baseline.json` must
//! reproduce byte-for-byte on any host at any worker count.

use ncmt::core::runner::Strategy;
use ncmt::sim::Pool;
use ncmt::spin::sched::QueueDiscipline;
use ncmt::telemetry::report::{Json, TrafficDoc};
use ncmt::traffic::{run_traffic, traffic_sweep, ArrivalKind, TenantStats, TrafficSweepSpec};

/// The spec behind `tests/golden/traffic_baseline.json`. Regenerate
/// with the command in the golden test's failure message.
fn golden_spec() -> TrafficSweepSpec {
    let mut s = TrafficSweepSpec::new(1);
    s.apps = vec!["COMB/b".into(), "NAS-MG/a".into()];
    s.loads = vec![0.4, 1.0];
    s.disciplines = QueueDiscipline::ALL.to_vec();
    s.tenants = 3;
    s.hpus = 8;
    s.horizon_ps = ncmt::sim::us(200);
    s
}

#[test]
fn golden_traffic_baseline_reproduces_byte_identically() {
    let path = format!(
        "{}/tests/golden/traffic_baseline.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let want =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden {path}: {e}"));
    let got = traffic_sweep(&golden_spec(), &Pool::from_env(None)).to_json();
    assert_eq!(
        got, want,
        "traffic engine drifted from its golden artifact; if the model \
         change is intended, regenerate with \
         `cargo test --test traffic_engine -- --ignored regenerate` \
         and commit the new {path}"
    );
}

/// Not a test: rewrites the golden artifact. Run explicitly via
/// `cargo test --test traffic_engine -- --ignored regenerate`.
#[test]
#[ignore]
fn regenerate_golden_traffic_baseline() {
    let path = format!(
        "{}/tests/golden/traffic_baseline.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let doc = traffic_sweep(&golden_spec(), &Pool::from_env(None));
    std::fs::write(&path, doc.to_json()).expect("write golden");
}

#[test]
fn golden_artifact_round_trips_through_the_parser() {
    let doc = traffic_sweep(&golden_spec(), &Pool::from_env(None));
    let json = doc.to_json();
    let parsed = Json::parse(&json).expect("self-emitted JSON parses");
    assert_eq!(
        parsed.get("kind").and_then(Json::as_str),
        Some(TrafficDoc::KIND)
    );
    assert_eq!(parsed.get("seed").and_then(Json::as_f64), Some(1.0));
    let cells = parsed.get("cells").and_then(Json::as_arr).expect("cells");
    assert_eq!(cells.len(), doc.cells.len());
    for (cell, c) in cells.iter().zip(&doc.cells) {
        assert_eq!(cell.get("app").and_then(Json::as_str), Some(c.app.as_str()));
        let tenants = cell.get("tenants").and_then(Json::as_arr).expect("tenants");
        assert_eq!(tenants.len(), c.tenants.len());
        for (tj, t) in tenants.iter().zip(&c.tenants) {
            assert_eq!(
                tj.get("offered").and_then(Json::as_f64),
                Some(t.offered as f64)
            );
            assert_eq!(
                tj.path("latency.p999").and_then(Json::as_f64),
                Some(t.latency.p999 as f64)
            );
        }
    }
}

#[test]
fn disciplines_separate_in_the_tail_under_skewed_steering() {
    // dFCFS serves per-HPU FIFOs fed by the RSS hash; with few flows the
    // table maps traffic onto a few HPUs and the tail inflates relative
    // to work-conserving cFCFS over the same arrival schedule.
    let mut s = golden_spec();
    s.apps = vec!["COMB/b".into()];
    s.loads = vec![0.6];
    s.flows_per_tenant = 2;
    let doc = traffic_sweep(&s, &Pool::from_env(None));
    let p99_of = |label: &str| -> u64 {
        doc.cells
            .iter()
            .find(|c| c.discipline == label)
            .expect(label)
            .tenants
            .iter()
            .map(|t| t.latency.p99)
            .max()
            .expect("tenants")
    };
    assert!(
        p99_of("dfcfs") > p99_of("cfcfs"),
        "steering imbalance must show: dfcfs {} vs cfcfs {}",
        p99_of("dfcfs"),
        p99_of("cfcfs")
    );
}

#[test]
fn heavy_tailed_arrivals_inflate_the_tail_at_equal_load() {
    // At 0.3 offered load the system is stable, so the tail reflects
    // arrival burstiness, not saturation (where every process pins the
    // latency near the horizon and the comparison degenerates).
    let mut pois = golden_spec();
    pois.apps = vec!["COMB/b".into()];
    pois.loads = vec![0.3];
    pois.disciplines = vec![QueueDiscipline::BlockedRR];
    let mut logn = pois.clone();
    logn.arrival = ArrivalKind::LogNormal;
    let tail = |spec: &TrafficSweepSpec| -> u64 {
        traffic_sweep(spec, &Pool::from_env(None)).cells[0]
            .tenants
            .iter()
            .map(|t| t.latency.p99)
            .max()
            .expect("tenants")
    };
    assert!(
        tail(&logn) > tail(&pois),
        "bursty lognormal arrivals must queue deeper than Poisson"
    );
}

#[test]
fn strategies_and_specialized_pipeline_compose_with_the_engine() {
    // The engine is strategy-agnostic: the specialized processor (whose
    // Default policy spreads packets over any free HPU) completes the
    // same offered schedule the RW-CP tenants do.
    let mut s = golden_spec();
    s.apps = vec!["NAS-MG/a".into()];
    s.loads = vec![0.5];
    s.disciplines = vec![QueueDiscipline::CFcfs];
    s.strategy = Strategy::Specialized;
    let doc = traffic_sweep(&s, &Pool::from_env(None));
    assert!(doc.all_byte_exact());
    let cell = &doc.cells[0];
    for t in &cell.tenants {
        assert_eq!(t.completed + t.lost, t.offered);
        assert!(t.completed > 0);
    }
}

#[test]
fn run_traffic_exposes_per_tenant_stats_directly() {
    let cfg = golden_spec().cell_config("COMB/b", 0.4, QueueDiscipline::BlockedRR);
    let r = run_traffic(&cfg);
    assert_eq!(r.tenants.len(), 3);
    let total: u64 = r.tenants.iter().map(|t: &TenantStats| t.completed).sum();
    assert!(total > 0);
    assert!(r.byte_exact);
    assert!(r.t_end >= cfg.horizon_ps);
}
