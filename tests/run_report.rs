//! Acceptance test for the flight-recorder/run-report layer: for an
//! RW-CP run, (a) the attributed per-stage times must sum to the
//! span-measured end-to-end window within 1% (they tile it exactly by
//! construction), and (b) the observed scheduling overhead must respect
//! the ε bound — or the report must flag the violation.

use ncmt::core::report::{report_config, strategy_report};
use ncmt::core::runner::{Experiment, Strategy};
use ncmt::ddt::types::{elem, Datatype, DatatypeExt};
use ncmt::spin::params::NicParams;
use ncmt::telemetry::report::RunReportDoc;
use ncmt::telemetry::Telemetry;

fn rwcp_report() -> (ncmt::telemetry::report::StrategyReport, Experiment) {
    let dt = Datatype::vector(512, 16, 32, &elem::double());
    let mut exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
    let (tel, sink) = Telemetry::ring(1 << 20);
    exp.telemetry = tel.scoped("RW-CP");
    let run = exp.run_modeled(Strategy::RwCp);
    let rep = strategy_report(&exp, &run, &sink.events(), "RW-CP");
    (rep, exp)
}

#[test]
fn attributed_times_sum_to_the_measured_window_within_one_percent() {
    let (rep, _exp) = rwcp_report();
    let e2e = rep.end_to_end_ps as f64;
    let sum = rep.attribution_sum() as f64;
    assert!(e2e > 0.0);
    assert!(
        (sum - e2e).abs() <= 0.01 * e2e,
        "attribution sum {sum} vs end-to-end {e2e}"
    );
    // The attribution is meaningful, not one catch-all bucket: real
    // handler work and DMA time both show up.
    let get = |label: &str| {
        rep.attribution
            .iter()
            .find(|&&(l, _)| l == label)
            .map(|&(_, t)| t)
            .unwrap_or(0)
    };
    assert!(get("handler_proc") > 0, "handler time attributed");
    assert!(get("dma") + get("drain") > 0, "DMA time attributed");
}

#[test]
fn observed_scheduling_overhead_respects_epsilon_or_is_flagged() {
    let (rep, _exp) = rwcp_report();
    let m = rep.model.expect("RW-CP must carry a model block");
    assert!(m.sched_budget_ps > 0, "budget derives from ε·⌈npkt/P⌉·T_PH");
    assert!(
        m.sched_overhead_ps <= m.sched_budget_ps || !m.epsilon_respected,
        "overhead {} exceeds budget {} without being flagged",
        m.sched_overhead_ps,
        m.sched_budget_ps
    );
    if m.planned_epsilon_violated {
        assert!(!m.epsilon_respected, "a planned violation must propagate");
    }
    assert!(m.t_ph_predicted_ps > 0);
    assert!(m.t_ph_measured_ps > 0.0);
}

#[test]
fn full_document_round_trips_with_the_rwcp_entry() {
    let (rep, exp) = rwcp_report();
    let doc = RunReportDoc {
        version: RunReportDoc::VERSION,
        trace_dropped_events: 0,
        config: report_config(&exp),
        strategies: vec![rep],
    };
    let v = ncmt::telemetry::report::Json::parse(&doc.to_json()).expect("own JSON parses");
    let strat = &v
        .get("strategies")
        .and_then(ncmt::telemetry::report::Json::as_arr)
        .unwrap()[0];
    assert_eq!(
        strat
            .path("attribution_sum_ps")
            .and_then(ncmt::telemetry::report::Json::as_f64),
        strat
            .path("end_to_end_ps")
            .and_then(ncmt::telemetry::report::Json::as_f64),
    );
    assert!(strat.path("model.epsilon_respected").is_some());
}
